// live.go replays a scenario against the in-process live platform: real
// goroutines, wall-clock windows, seeded chaos swapped at phase
// boundaries. Live mode exists for smoke coverage — does the platform
// uphold the same invariants the simulator promises, under real
// concurrency? — so it is deliberately small: one worker, a bounded
// arrival budget, no outages (the live registry owns mark-down in
// production; a single in-process worker has nothing to fail over to).
// Live reports carry real timings and are not byte-reproducible.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/obs"
	"faasbatch/internal/platform"
	"faasbatch/internal/slo"
)

// maxLiveInvocations bounds a live scenario's expected arrivals: live
// runs burn wall clock and real CPU, so fleet-scale numbers belong in
// sim mode.
const maxLiveInvocations = 100_000

func runLive(sc *Scenario, traceSink io.Writer) (*Body, error) {
	if sc.Fleet.Workers != 1 {
		return nil, fmt.Errorf("scenario: live mode supports exactly 1 worker, got %d (use mode: sim for fleets)", sc.Fleet.Workers)
	}
	for i, p := range sc.Phases {
		if len(p.Outages) > 0 {
			return nil, fmt.Errorf("scenario: live mode does not support outages (phase %d)", i)
		}
	}
	if n := sc.ExpectedInvocations(); n > maxLiveInvocations {
		return nil, fmt.Errorf("scenario: live mode caps expected invocations at %d, scenario declares ~%d", maxLiveInvocations, n)
	}
	scale := sc.LiveTimeScale

	inj := chaos.MustNew(chaos.Config{
		Seed:            subSeed(sc.Seed, "chaos"),
		ColdStartFactor: sc.Chaos.ColdStartFactor,
		HangDuration:    sc.Chaos.Hang,
	})
	pcfg := platform.DefaultConfig()
	pcfg.ColdStart = 5 * time.Millisecond
	pcfg.DispatchInterval = 20 * time.Millisecond
	if sc.Dispatch.Interval > 0 {
		pcfg.DispatchInterval = sc.Dispatch.Interval
	}
	pcfg.AdaptiveDispatch = sc.Dispatch.Adaptive
	if sc.Dispatch.MinInterval > 0 {
		pcfg.MinInterval = sc.Dispatch.MinInterval
	}
	pcfg.MaxGroupSize = sc.Dispatch.MaxGroupSize
	pcfg.MaxRetries = 3
	switch {
	case sc.Dispatch.MaxRetries < 0:
		pcfg.MaxRetries = 0
	case sc.Dispatch.MaxRetries > 0:
		pcfg.MaxRetries = sc.Dispatch.MaxRetries
	}
	// Hangs must resolve inside the drain budget, so every attempt gets a
	// deadline comfortably above the injected hang.
	pcfg.InvokeTimeout = 2*injHang(sc) + time.Second
	pcfg.Chaos = inj
	if traceSink != nil {
		tr, err := obs.NewWallTracer(1<<16, 1)
		if err != nil {
			return nil, err
		}
		pcfg.Tracer = tr
	}
	p, err := platform.New(pcfg)
	if err != nil {
		return nil, err
	}

	echo := func(ctx context.Context, inv *platform.Invocation) (any, error) {
		return len(inv.Payload), nil
	}
	registered := map[string]bool{}
	for _, ph := range sc.Phases {
		for _, e := range ph.Mix {
			for i := 0; i < e.Instances; i++ {
				name := e.Fn
				if e.Instances > 1 {
					name = fmt.Sprintf("%s-%d", e.Fn, i)
				}
				if !registered[name] {
					registered[name] = true
					if err := p.Register(name, echo); err != nil {
						_ = p.Close()
						return nil, err
					}
				}
			}
		}
	}

	// Live-mode SLO tracking observes wall time, so the window ladder
	// scales to the wall span of the run (phase durations / time scale).
	var slos *slo.Tracker
	if objs := sc.SLOObjectives(); len(objs) > 0 {
		slos, err = slo.NewTracker(slo.ScaledWindows(scaled(sc.TotalDuration(), scale)), objs)
		if err != nil {
			_ = p.Close()
			return nil, err
		}
	}

	start := time.Now()
	var (
		mu     sync.Mutex
		events []Event
		body   Body
	)
	event := func(kind, detail string) {
		mu.Lock()
		events = append(events, Event{TimeMillis: time.Since(start).Milliseconds(), Kind: kind, Detail: detail})
		mu.Unlock()
	}

	// Sampler goroutine: platform stats every Sampling/scale.
	var samples []Sample
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(scaled(sc.Sampling, scale))
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				st := p.Stats()
				mu.Lock()
				samples = append(samples, Sample{
					TimeMillis:     time.Since(start).Milliseconds(),
					Submitted:      st.Submitted,
					Completed:      st.Invocations + st.Canceled,
					Inflight:       st.Submitted - st.Invocations - st.Canceled,
					LiveContainers: int64(st.LiveContainers),
				})
				mu.Unlock()
			}
		}
	}()

	var wg sync.WaitGroup
	var submitted int64
	var aggs []*phaseAgg
	for pi, ph := range sc.Phases {
		agg := &phaseAgg{}
		aggs = append(aggs, agg)
		event("phase", fmt.Sprintf("phase %q starts (arrival %s, rate %g/s)", ph.Name, ph.Arrival, ph.Rate))
		// The phase-boundary rate swap races the platform's in-flight
		// dispatch goroutines by design — the -race stress satellite
		// exercises exactly this path.
		if err := inj.SetRates(ph.Chaos); err != nil {
			_ = p.Close()
			return nil, err
		}
		if len(ph.Chaos) > 0 {
			event("chaos", fmt.Sprintf("fault rates set for phase %q", ph.Name))
		}
		runLivePhase(p, sc, pi, ph, scale, &wg, agg, &mu, slos, start)
	}
	// All arrivals issued; wait for every in-flight invocation so the
	// phase aggregates are complete before they are summarised.
	wg.Wait()
	for pi, ph := range sc.Phases {
		agg := aggs[pi]
		submitted += agg.submitted
		body.Phases = append(body.Phases, PhaseReport{
			Name:      ph.Name,
			Arrival:   ph.Arrival,
			Rate:      ph.Rate,
			Submitted: agg.submitted,
			Completed: agg.completed,
			Failed:    agg.failed,
			Retries:   agg.retries,
			Total:     summarize(agg.totalMicros),
			Sched:     summarize(agg.schedMicros),
		})
	}
	close(stopSampler)
	<-samplerDone
	if err := p.Close(); err != nil {
		return nil, fmt.Errorf("scenario: platform close: %w", err)
	}
	if traceSink != nil {
		if err := p.Tracer().WriteChromeTrace(traceSink); err != nil {
			return nil, fmt.Errorf("scenario: trace export: %w", err)
		}
	}
	st := p.Stats()

	body.Version = ReportVersion
	body.Scenario = sc.Name
	body.Mode = sc.Mode.String()
	body.Seed = sc.Seed
	body.Workers = 1
	body.Zones = sc.Fleet.Zones
	body.Balancing = sc.Dispatch.Balancing.String()
	body.Events = events
	body.Samples = samples
	var completed, failed, retries int64
	var allTotal []int64
	for i := range body.Phases {
		completed += body.Phases[i].Completed
		failed += body.Phases[i].Failed
		retries += body.Phases[i].Retries
		allTotal = append(allTotal, aggs[i].totalMicros...)
	}
	body.Totals = Totals{Submitted: submitted, Completed: completed, Failed: failed, Retries: retries, Total: summarize(allTotal)}
	body.Scheduler = SchedStats{
		Submitted:          st.Submitted,
		Groups:             st.Groups,
		Retries:            st.Retries,
		Failed:             st.Failures,
		FastPathDispatches: st.FastPathDispatches,
		EarlyCloses:        st.EarlyCloses,
		WindowDispatches:   st.WindowDispatches,
	}
	body.Fleet = FleetStats{
		ContainersCreated: st.ContainersCreated,
		ColdStarts:        st.ContainersCreated,
		WarmStarts:        st.WarmStarts,
		Crashes:           st.Crashes,
		BootFailures:      st.BootFailures,
	}
	body.Chaos = chaosCounts(inj)
	body.Invariants = evalInvariants(sc.Invariants, invariantInputs{
		submitted:        submitted,
		completed:        completed,
		failed:           failed,
		conservationLHS:  st.Submitted,
		conservationRHS:  st.Invocations + st.Canceled,
		conservationExpr: "platform Submitted == Invocations + Canceled",
		slo:              sloVerdicts(sc, slos, time.Since(start)),
	})
	body.MakespanMillis = time.Since(start).Milliseconds()
	return &body, nil
}

// runLivePhase paces one phase's arrivals on the wall clock and blocks
// until the phase window has elapsed (in-flight calls may drain later).
func runLivePhase(p *platform.Platform, sc *Scenario, pi int, ph Phase, scale float64, wg *sync.WaitGroup, agg *phaseAgg, mu *sync.Mutex, slos *slo.Tracker, start time.Time) {
	rng := rand.New(rand.NewSource(subSeed(sc.Seed, fmt.Sprintf("arrivals-%d", pi))))
	names := liveMixNames(ph)
	deadline := time.Now().Add(scaled(ph.Duration, scale))
	payload := json.RawMessage(`{}`)
	for ph.Rate > 0 && time.Now().Before(deadline) {
		fn := names[rng.Intn(len(names))]
		mu.Lock()
		agg.submitted++
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Invoke(context.Background(), fn, payload)
			slos.Observe(fn, res.Total(), err != nil, time.Since(start))
			mu.Lock()
			defer mu.Unlock()
			agg.completed++
			if err != nil {
				agg.failed++
			}
			if res.Attempts > 1 {
				agg.retries += int64(res.Attempts - 1)
			}
			agg.totalMicros = append(agg.totalMicros, res.Total().Microseconds())
			agg.schedMicros = append(agg.schedMicros, res.Sched.Microseconds())
		}()
		gap := scaled(expDuration(rng, ph.Rate), scale)
		time.Sleep(gap)
	}
	if ph.Rate <= 0 {
		time.Sleep(scaled(ph.Duration, scale))
	}
}

// liveMixNames expands a phase mix into a weighted name list (weights
// rounded to a small integer resolution — live smoke runs need mix
// coverage, not exact proportions).
func liveMixNames(ph Phase) []string {
	var names []string
	for _, e := range ph.Mix {
		copies := int(e.Weight + 0.5)
		if copies < 1 {
			copies = 1
		}
		for c := 0; c < copies; c++ {
			for i := 0; i < e.Instances; i++ {
				name := e.Fn
				if e.Instances > 1 {
					name = fmt.Sprintf("%s-%d", e.Fn, i)
				}
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		names = []string{"noop"}
	}
	return names
}

// scaled compresses a wall-clock duration by the scenario's time scale.
func scaled(d time.Duration, scale float64) time.Duration {
	if scale <= 1 {
		return d
	}
	out := time.Duration(float64(d) / scale)
	if out < time.Millisecond {
		out = time.Millisecond
	}
	return out
}

// injHang reports the effective injected hang duration.
func injHang(sc *Scenario) time.Duration {
	if sc.Chaos.Hang > 0 {
		return sc.Chaos.Hang
	}
	return 2 * time.Second
}
