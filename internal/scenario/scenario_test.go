package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/cluster"
)

func TestParseFullScenario(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "noisy-chaos.yaml"))
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	sc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "noisy-chaos" || sc.Seed != 404 || sc.Mode != ModeSim {
		t.Errorf("header mismatch: %q seed %d mode %v", sc.Name, sc.Seed, sc.Mode)
	}
	if sc.Fleet.Workers != 4 || sc.Fleet.Zones != 2 {
		t.Errorf("fleet mismatch: %+v", sc.Fleet)
	}
	if sc.Dispatch.Balancing != cluster.LeastLoaded || sc.Dispatch.MaxRetries != 5 {
		t.Errorf("dispatch mismatch: %+v", sc.Dispatch)
	}
	if len(sc.Phases) != 3 {
		t.Fatalf("want 3 phases, got %d", len(sc.Phases))
	}
	noisy := sc.Phases[1]
	if noisy.Chaos[chaos.ContainerCrash] != 0.05 || noisy.Chaos[chaos.SlowColdStart] != 0.2 {
		t.Errorf("chaos rates mismatch: %v", noisy.Chaos)
	}
	found := false
	for _, inv := range sc.Invariants {
		if inv.Name == "max-failure-rate" && inv.Value == 0.02 {
			found = true
		}
	}
	if !found {
		t.Errorf("parameterised invariant missing: %+v", sc.Invariants)
	}
}

func TestParseCorpusAll(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.yaml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	sc, err := Parse([]byte(`
scenario: mini
phases:
  - duration: 1s
    rate: 10
    mix:
      - fn: f
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Seed != 1 || sc.Mode != ModeSim || sc.Sampling != time.Second || sc.MaxDrain != time.Hour {
		t.Errorf("defaults mismatch: %+v", sc)
	}
	if sc.Fleet.Workers != 1 || sc.Fleet.Zones != 1 {
		t.Errorf("fleet defaults mismatch: %+v", sc.Fleet)
	}
	if sc.Dispatch.Balancing != cluster.FnAffinity {
		t.Errorf("balancing default mismatch: %v", sc.Dispatch.Balancing)
	}
	p := sc.Phases[0]
	if p.Arrival != "poisson" || p.Mix[0].Weight != 1 || p.Mix[0].Instances != 1 {
		t.Errorf("phase defaults mismatch: %+v", p)
	}
}

func TestParseAutoscale(t *testing.T) {
	sc, err := Parse([]byte(`
scenario: elastic
fleet:
  workers: 6
autoscale:
  min-workers: 0
  max-workers: 4
  target-per-worker: 25
  headroom: 0.5
  eval-interval: 250ms
  warmup: 100ms
  drain-budget: 2s
  scale-down-after: 3
  scale-to-zero-after: 10s
  prewarm-quantile: 0.9
phases:
  - duration: 1s
    rate: 10
    mix:
      - fn: f
invariants:
  - min-peak-ready: 2
  - scaled-to-zero
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a := sc.Autoscale
	if a == nil {
		t.Fatal("autoscale block not decoded")
	}
	if a.MinWorkers != 0 || a.MaxWorkers != 4 || a.TargetPerWorker != 25 || a.Headroom != 0.5 {
		t.Errorf("sizing mismatch: %+v", a)
	}
	if a.EvalInterval != 250*time.Millisecond || a.Warmup != 100*time.Millisecond ||
		a.DrainBudget != 2*time.Second || a.ScaleToZeroAfter != 10*time.Second {
		t.Errorf("timing mismatch: %+v", a)
	}
	if a.ScaleDownAfter != 3 || a.PrewarmQuantile != 0.9 {
		t.Errorf("hysteresis mismatch: %+v", a)
	}
	// Absent keys stay zero so the controller's WithDefaults applies.
	if a.Alpha != 0 {
		t.Errorf("alpha should default to 0 (controller default), got %g", a.Alpha)
	}
	// A scenario without the block must leave Autoscale nil — that is the
	// "autoscaling disabled" signal the cluster runner keys on.
	plain, err := Parse([]byte("scenario: p\nphases:\n  - duration: 1s\n"))
	if err != nil {
		t.Fatalf("Parse plain: %v", err)
	}
	if plain.Autoscale != nil {
		t.Errorf("Autoscale should be nil without a block, got %+v", plain.Autoscale)
	}
}

func TestParseRouting(t *testing.T) {
	sc, err := Parse([]byte(`
scenario: skew
fleet:
  workers: 4
routing:
  policy: pull
  queue-depth: 64
  batch: 2
  capacity: 8
phases:
  - duration: 1s
    rate: 10
    mix:
      - fn: hot
invariants:
  - max-load-cv: 0.5
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r := sc.Routing
	if r == nil {
		t.Fatal("routing block not decoded")
	}
	if r.Policy != "pull" || r.QueueDepth != 64 || r.Batch != 2 || r.Capacity != 8 {
		t.Errorf("routing mismatch: %+v", r)
	}
	// A scenario without the block must leave Routing nil — dispatch
	// balancing stays in charge.
	plain, err := Parse([]byte("scenario: p\nphases:\n  - duration: 1s\n"))
	if err != nil {
		t.Fatalf("Parse plain: %v", err)
	}
	if plain.Routing != nil {
		t.Errorf("Routing should be nil without a block, got %+v", plain.Routing)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing name", "seed: 1\nphases:\n  - duration: 1s\n"},
		{"no phases", "scenario: x\n"},
		{"unknown top key", "scenario: x\nbogus: 1\nphases:\n  - duration: 1s\n"},
		{"unknown phase key", "scenario: x\nphases:\n  - duration: 1s\n    bogus: 2\n"},
		{"unknown balancing", "scenario: x\ndispatch:\n  balancing: magic\nphases:\n  - duration: 1s\n"},
		{"unknown arrival", "scenario: x\nphases:\n  - duration: 1s\n    arrival: lumpy\n"},
		{"rate without mix", "scenario: x\nphases:\n  - duration: 1s\n    rate: 5\n"},
		{"zone out of range", "scenario: x\nfleet:\n  workers: 4\n  zones: 2\nphases:\n  - duration: 1s\n    outages:\n      - zone: 2\n        at: 0s\n        duration: 1s\n"},
		{"io and fib-n", "scenario: x\nphases:\n  - duration: 1s\n    rate: 1\n    mix:\n      - fn: f\n        io: true\n        fib-n: 20\n"},
		{"unknown fault kind", "scenario: x\nphases:\n  - duration: 1s\n    chaos:\n      meteor-strike: 0.1\n"},
		{"chaos rate of 1", "scenario: x\nphases:\n  - duration: 1s\n    chaos:\n      boot-failure: 1\n"},
		{"unknown invariant", "scenario: x\nphases:\n  - duration: 1s\ninvariants:\n  - perpetual-motion\n"},
		{"bad duration", "scenario: x\nphases:\n  - duration: fortnight\n"},
		{"bad mode", "scenario: x\nmode: dream\nphases:\n  - duration: 1s\n"},
		{"zones above workers", "scenario: x\nfleet:\n  workers: 2\n  zones: 5\nphases:\n  - duration: 1s\n"},
		{"unknown autoscale key", "scenario: x\nautoscale:\n  bogus: 1\nphases:\n  - duration: 1s\n"},
		{"autoscale in live mode", "scenario: x\nmode: live\nautoscale:\n  min-workers: 1\nphases:\n  - duration: 1s\n"},
		{"negative target-per-worker", "scenario: x\nautoscale:\n  target-per-worker: -3\nphases:\n  - duration: 1s\n"},
		{"autoscale min above fleet", "scenario: x\nfleet:\n  workers: 2\nautoscale:\n  min-workers: 5\nphases:\n  - duration: 1s\n"},
		{"unknown routing policy", "scenario: x\nrouting:\n  policy: psychic\nphases:\n  - duration: 1s\n"},
		{"routing in live mode", "scenario: x\nmode: live\nrouting:\n  policy: pull\nphases:\n  - duration: 1s\n"},
		{"pull tuning on hash policy", "scenario: x\nrouting:\n  policy: hash\n  queue-depth: 8\nphases:\n  - duration: 1s\n"},
		{"unknown routing key", "scenario: x\nrouting:\n  policy: pull\n  bogus: 1\nphases:\n  - duration: 1s\n"},
		{"negative queue depth", "scenario: x\nrouting:\n  policy: pull\n  queue-depth: -1\nphases:\n  - duration: 1s\n"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.src)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"16GiB":  16 << 30,
		"512MiB": 512 << 20,
		"8KiB":   8 << 10,
		"2GB":    2e9,
		"64":     64,
		"1.5MiB": 3 << 19,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "lots", "GiB", "1.5.5MB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}

func TestExpectedInvocations(t *testing.T) {
	sc := &Scenario{Phases: []Phase{
		{Duration: 10 * time.Second, Rate: 100},
		{Duration: 10 * time.Second, Rate: 100, Ramp: 10 * time.Second},
	}}
	// Full phase: 1000; fully ramped phase counts half: 500.
	if got := sc.ExpectedInvocations(); got != 1500 {
		t.Errorf("ExpectedInvocations = %d, want 1500", got)
	}
	if got := sc.TotalDuration(); got != 20*time.Second {
		t.Errorf("TotalDuration = %v, want 20s", got)
	}
}

func TestTemplateFleetInterleaves(t *testing.T) {
	sc := &Scenario{Fleet: Fleet{
		Workers: 6,
		Zones:   2,
		Templates: []Template{
			{Name: "a", Weight: 2, Cores: 8},
			{Name: "b", Weight: 1, Cores: 16},
		},
	}}
	cfgs := buildFleet(sc)
	var eights, sixteens int
	for _, c := range cfgs {
		switch c.Cores {
		case 8:
			eights++
		case 16:
			sixteens++
		default:
			t.Fatalf("unexpected cores %v", c.Cores)
		}
	}
	if eights != 4 || sixteens != 2 {
		t.Errorf("weighted split = %d/%d, want 4/2", eights, sixteens)
	}
	// Interleaved, not contiguous: both zones must see both shapes.
	zoneCores := map[int]map[float64]bool{0: {}, 1: {}}
	for i, c := range cfgs {
		zoneCores[i%2][c.Cores] = true
	}
	for z, set := range zoneCores {
		if len(set) != 2 {
			t.Errorf("zone %d saw only %v", z, set)
		}
	}
}

func TestValidateStringerCoverage(t *testing.T) {
	if ModeSim.String() != "sim" || ModeLive.String() != "live" {
		t.Error("mode strings mismatch")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode string should echo the value")
	}
}
