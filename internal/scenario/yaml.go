// yaml.go implements the YAML subset scenario files are written in.
//
// The repository takes no external dependencies, so instead of importing a
// YAML module the scenario engine parses the subset it actually needs:
// block mappings and sequences nested by indentation, inline scalars
// (strings, quoted strings, integers, floats, booleans, null), "- key:
// value" sequence items, comments, the empty flow collections []/{}, and
// single-line flow mappings with scalar values ({function: f1, p99_ms:
// 250}) as used by parameterised invariants. Anchors, aliases,
// multi-document streams, multi-line scalars, flow sequences and
// multi-line flow syntax are intentionally out of scope — a scenario that
// needs them should be restructured, not the parser grown.
//
// The parser is a fuzz target (FuzzParseYAML): it must never panic, loop,
// or allocate unboundedly on hostile input, which the explicit depth cap
// and single-pass line scan guarantee.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// maxYAMLDepth bounds block nesting so crafted inputs (one space deeper
// per line) cannot recurse unboundedly.
const maxYAMLDepth = 128

// ParseYAML parses src into a tree of map[string]any, []any and scalar
// values (string, int64, float64, bool, nil).
func ParseYAML(src []byte) (any, error) {
	lines, err := splitYAMLLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &yamlParser{lines: lines}
	v, next, err := p.parseBlock(0, lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml: line %d: unexpected content after top-level block", lines[next].n)
	}
	return v, nil
}

// yamlLine is one non-blank source line with its comment stripped.
type yamlLine struct {
	n      int // 1-based source line number, for errors
	indent int
	text   string
}

// splitYAMLLines breaks src into indent-annotated content lines, dropping
// blanks and comments. Tabs in indentation are an error (as in YAML).
func splitYAMLLines(src []byte) ([]yamlLine, error) {
	var out []yamlLine
	for n, raw := range strings.Split(string(src), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		rest := line[indent:]
		if strings.HasPrefix(rest, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tab in indentation", n+1)
		}
		rest = stripYAMLComment(rest)
		rest = strings.TrimRight(rest, " \t")
		if rest == "" {
			continue
		}
		out = append(out, yamlLine{n: n + 1, indent: indent, text: rest})
	}
	return out, nil
}

// stripYAMLComment removes a trailing comment: a '#' at the start or
// preceded by whitespace, outside single or double quotes.
func stripYAMLComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && inDouble:
			i++ // skip the escaped character
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
}

// parseBlock parses the block starting at line i, whose lines sit at
// exactly the given indent. It returns the value and the index of the
// first line it did not consume.
func (p *yamlParser) parseBlock(i, indent, depth int) (any, int, error) {
	if depth > maxYAMLDepth {
		return nil, i, fmt.Errorf("yaml: line %d: nesting deeper than %d levels", p.lines[i].n, maxYAMLDepth)
	}
	if p.lines[i].indent != indent {
		return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", p.lines[i].n)
	}
	if isSequenceItem(p.lines[i].text) {
		return p.parseSequence(i, indent, depth)
	}
	if _, _, ok := splitKey(p.lines[i].text); ok {
		return p.parseMapping(i, indent, depth)
	}
	// A lone scalar block.
	v, err := parseScalar(p.lines[i].text, p.lines[i].n)
	if err != nil {
		return nil, i, err
	}
	return v, i + 1, nil
}

// parseMapping consumes "key: value" lines at the given indent.
func (p *yamlParser) parseMapping(i, indent, depth int) (any, int, error) {
	m := map[string]any{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", ln.n)
		}
		if isSequenceItem(ln.text) {
			return nil, i, fmt.Errorf("yaml: line %d: sequence item inside mapping", ln.n)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("yaml: line %d: expected \"key: value\"", ln.n)
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("yaml: line %d: duplicate key %q", ln.n, key)
		}
		i++
		if rest != "" {
			v, err := parseScalar(rest, ln.n)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			continue
		}
		// No inline value: a nested block if the next line is deeper,
		// otherwise null.
		if i < len(p.lines) && p.lines[i].indent > indent {
			v, next, err := p.parseBlock(i, p.lines[i].indent, depth+1)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i = next
			continue
		}
		m[key] = nil
	}
	return m, i, nil
}

// parseSequence consumes "- ..." lines at the given indent.
func (p *yamlParser) parseSequence(i, indent, depth int) (any, int, error) {
	var seq []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, i, fmt.Errorf("yaml: line %d: unexpected indentation", ln.n)
		}
		if !isSequenceItem(ln.text) {
			return nil, i, fmt.Errorf("yaml: line %d: expected \"- item\" in sequence", ln.n)
		}
		if ln.text == "-" {
			i++
			// Item body on the following deeper-indented lines, or null.
			if i < len(p.lines) && p.lines[i].indent > indent {
				v, next, err := p.parseBlock(i, p.lines[i].indent, depth+1)
				if err != nil {
					return nil, i, err
				}
				seq = append(seq, v)
				i = next
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		// Inline item content: re-home it at its real column so "- key:
		// value" plus deeper continuation lines parse as one mapping.
		rest := strings.TrimLeft(ln.text[1:], " ")
		virtual := indent + (len(ln.text) - len(rest))
		p.lines[i] = yamlLine{n: ln.n, indent: virtual, text: rest}
		v, next, err := p.parseBlock(i, virtual, depth+1)
		if err != nil {
			return nil, i, err
		}
		seq = append(seq, v)
		i = next
	}
	return seq, i, nil
}

// isSequenceItem reports whether a content line introduces a sequence
// element.
func isSequenceItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// splitKey splits "key: value" / "key:" into key and the raw value text.
// The separating colon must sit outside quotes and be followed by a space
// or end the line.
func splitKey(s string) (key, rest string, ok bool) {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && inDouble:
			i++
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case c == ':' && !inSingle && !inDouble:
			if i+1 == len(s) || s[i+1] == ' ' {
				key = strings.TrimSpace(s[:i])
				if key == "" {
					return "", "", false
				}
				return key, strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// parseScalar interprets one inline value.
func parseScalar(s string, line int) (any, error) {
	return parseScalarDepth(s, line, 0)
}

func parseScalarDepth(s string, line, depth int) (any, error) {
	switch {
	case s == "[]":
		return []any{}, nil
	case s == "{}":
		return map[string]any{}, nil
	case s == "null" || s == "~":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	if len(s) >= 1 && s[0] == '{' {
		return parseFlowMapping(s, line, depth)
	}
	if len(s) >= 1 && (s[0] == '"' || s[0] == '\'') {
		return unquoteScalar(s, line)
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	return s, nil
}

// parseFlowMapping parses a single-line "{key: value, ...}" flow mapping.
// Values are scalars or nested flow mappings; flow sequences remain out of
// scope. The depth cap shared with the block parser keeps crafted
// "{a: {a: {..." inputs from recursing unboundedly.
func parseFlowMapping(s string, line, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("yaml: line %d: nesting deeper than %d levels", line, maxYAMLDepth)
	}
	if len(s) < 2 || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("yaml: line %d: unterminated flow mapping", line)
	}
	m := map[string]any{}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return m, nil
	}
	for _, part := range splitFlowItems(inner) {
		part = strings.TrimSpace(part)
		key, rest, ok := splitKey(part)
		if !ok {
			return nil, fmt.Errorf("yaml: line %d: expected \"key: value\" in flow mapping, got %q", line, part)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", line, key)
		}
		if rest == "" {
			m[key] = nil
			continue
		}
		v, err := parseScalarDepth(rest, line, depth+1)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// splitFlowItems splits flow-mapping content on commas that sit outside
// quotes and nested braces.
func splitFlowItems(s string) []string {
	var parts []string
	braces := 0
	inSingle, inDouble := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && inDouble:
			i++
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case c == '{' && !inSingle && !inDouble:
			braces++
		case c == '}' && !inSingle && !inDouble:
			braces--
		case c == ',' && braces == 0 && !inSingle && !inDouble:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// unquoteScalar handles single- and double-quoted strings. Double quotes
// support the \" \\ \n \t escapes; single quotes escape only ” -> '.
func unquoteScalar(s string, line int) (string, error) {
	q := s[0]
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch {
		case c == q && q == '\'' && i+1 < len(s) && s[i+1] == '\'':
			b.WriteByte('\'')
			i += 2
		case c == q:
			if i != len(s)-1 {
				return "", fmt.Errorf("yaml: line %d: content after closing quote", line)
			}
			return b.String(), nil
		case c == '\\' && q == '"':
			if i+1 >= len(s) {
				return "", fmt.Errorf("yaml: line %d: dangling escape", line)
			}
			switch s[i+1] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", fmt.Errorf("yaml: line %d: unsupported escape \\%c", line, s[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", fmt.Errorf("yaml: line %d: unterminated quoted string", line)
}
