package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func loadScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	sc, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return sc
}

// TestDeterminismCorpus is the reproducibility regression: every sim
// scenario in the committed corpus, run twice with the same seed, must
// produce byte-identical report bodies — and therefore identical hashes
// in the stamped report. One runner is reused across all runs, so the
// engine's Reset path is part of what is being pinned.
func TestDeterminismCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.yaml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(files))
	}
	runner := NewRunner()
	fresh := NewRunner()
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			sc, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if sc.Mode != ModeSim {
				t.Skip("live scenarios are not byte-reproducible")
			}
			first, err := runner.RunBody(sc)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			second, err := runner.RunBody(sc)
			if err != nil {
				t.Fatalf("run 2 (reused engine): %v", err)
			}
			third, err := fresh.RunBody(sc)
			if err != nil {
				t.Fatalf("run 3 (fresh-engine runner): %v", err)
			}
			a, err := first.Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			b, _ := second.Marshal()
			c, _ := third.Marshal()
			if !bytes.Equal(a, b) {
				t.Errorf("reused-engine rerun diverged (%d vs %d bytes)", len(a), len(b))
			}
			if !bytes.Equal(a, c) {
				t.Errorf("fresh-engine rerun diverged (%d vs %d bytes)", len(a), len(c))
			}
			if first.Totals.Submitted == 0 {
				t.Error("scenario submitted nothing; corpus entry is vacuous")
			}
			for _, inv := range first.Violations() {
				t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
			}
		})
	}
}

// TestFailoverScenario digs into the failover corpus entry: the outage
// must actually take workers down (and bring them back), and the
// zero-loss invariant must hold through it.
func TestFailoverScenario(t *testing.T) {
	sc := loadScenario(t, "failover.yaml")
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var downs, ups int
	for _, e := range body.Events {
		switch e.Kind {
		case "outage-down":
			downs++
		case "outage-up":
			ups++
		}
	}
	if downs != 2 || ups != 2 { // zone 1 of 4 zones over 8 workers = 2 workers
		t.Errorf("outage events = %d down / %d up, want 2/2", downs, ups)
	}
	sawDown := false
	for _, s := range body.Samples {
		if s.WorkersDown > 0 {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("no sample observed a downed worker during the outage window")
	}
	for _, inv := range body.Violations() {
		t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
	}
}

// TestPullRoutingScenario drives the pull-policy corpus entry and pins
// the routing report block, then re-runs the same workload under the
// hash policy and checks late binding actually spreads the skewed load
// better than consistent hashing.
func TestPullRoutingScenario(t *testing.T) {
	sc := loadScenario(t, "pull-skew.yaml")
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	r := body.Routing
	if r == nil {
		t.Fatal("routing block missing from the report")
	}
	if r.Policy != "pull" || r.QueueDepth != 1024 {
		t.Errorf("routing echo mismatch: %+v", r)
	}
	if body.Balancing != "pull" {
		t.Errorf("balancing = %q, want pull (routing block overrides dispatch)", body.Balancing)
	}
	if r.Granted < body.Totals.Submitted {
		t.Errorf("granted %d < submitted %d: every admitted invocation needs a lease", r.Granted, body.Totals.Submitted)
	}
	if r.Shed != 0 {
		t.Errorf("queue depth 1024 should not shed, got %d", r.Shed)
	}
	for _, inv := range body.Violations() {
		t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
	}

	hash := *sc
	hash.Routing = &Routing{Policy: "hash"}
	hashBody, err := NewRunner().RunBody(&hash)
	if err != nil {
		t.Fatalf("hash run: %v", err)
	}
	if hashBody.Routing == nil {
		t.Fatal("hash routing block missing")
	}
	if hashBody.Routing.LoadCVMilli <= r.LoadCVMilli {
		t.Errorf("pull should spread the skew better than hash: pull CV %d, hash CV %d (milli)",
			r.LoadCVMilli, hashBody.Routing.LoadCVMilli)
	}
}

// TestNoisyChaosScenario checks the chaos schedule had teeth: injections
// happened, retries happened, and the declared failure-rate bound still
// held.
func TestNoisyChaosScenario(t *testing.T) {
	sc := loadScenario(t, "noisy-chaos.yaml")
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(body.Chaos) == 0 {
		t.Error("no faults injected despite the noisy phase")
	}
	if body.Totals.Retries == 0 {
		t.Error("no retries despite container crashes")
	}
	for _, inv := range body.Violations() {
		t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
	}
	// The clean first phase must stay clean: its submissions happen
	// before any rate swap.
	if body.Phases[0].Failed != 0 {
		t.Errorf("clean phase recorded %d failures", body.Phases[0].Failed)
	}
}

// TestAdaptiveDispatchWiring checks the dispatch section reaches the
// schedulers: the bursty corpus entry runs adaptive windows, so adaptive
// counters must move.
func TestAdaptiveDispatchWiring(t *testing.T) {
	sc := loadScenario(t, "bursty.yaml")
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	adaptive := body.Scheduler.FastPathDispatches + body.Scheduler.EarlyCloses + body.Scheduler.WindowDispatches
	if adaptive == 0 {
		t.Error("adaptive dispatch counters all zero; dispatch config not wired through")
	}
	if body.Scheduler.MaxGroupSize > 32 {
		t.Errorf("max group size %d exceeds configured cap 32", body.Scheduler.MaxGroupSize)
	}
}

// TestReportStamping checks hash/timestamp placement: same body, same
// hash; the timestamp lives outside the hashed payload.
func TestReportStamping(t *testing.T) {
	sc := loadScenario(t, "sparse.yaml")
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	r1, err := NewReport(*body, time.Unix(1000, 0))
	if err != nil {
		t.Fatalf("NewReport: %v", err)
	}
	r2, err := NewReport(*body, time.Unix(2000, 0))
	if err != nil {
		t.Fatalf("NewReport: %v", err)
	}
	if r1.BodySHA256 != r2.BodySHA256 {
		t.Error("hash depends on the stamping time")
	}
	if r1.GeneratedAt == r2.GeneratedAt {
		t.Error("timestamps should differ")
	}
	var html bytes.Buffer
	if err := r1.WriteHTML(&html); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	if !bytes.Contains(html.Bytes(), []byte(sc.Name)) {
		t.Error("html summary does not mention the scenario name")
	}
}

// TestControlEventsOutliveWorkload: an outage whose recovery lands after
// the last phase must still be waited for — all-recovered holds because
// the runner's end-of-run is the later of the workload end and the last
// control event, not just the phase timeline.
func TestControlEventsOutliveWorkload(t *testing.T) {
	sc, err := Parse([]byte(`
scenario: late-recovery
fleet:
  workers: 2
  zones: 2
phases:
  - name: p
    duration: 1s
    rate: 0
    outages:
      - zone: 0
        at: 500ms
        duration: 30s
invariants:
  - all-recovered
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, inv := range body.Violations() {
		t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
	}
	if body.MakespanMillis < 30_000 {
		t.Errorf("makespan %d ms; the run ended before the recovery at ~30.5s", body.MakespanMillis)
	}
}
