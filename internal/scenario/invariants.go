// invariants.go is the catalog of run assertions a scenario can declare.
// The runner evaluates them at quiescence and records each verdict in the
// report; cmd/faasstress exits non-zero when any fails, so CI treats an
// invariant violation exactly like a failing test.
package scenario

import "fmt"

// invariantCatalog names the known assertions; parameterised entries take
// a "name: value" form in the scenario file.
var invariantCatalog = map[string]struct{ parameterised bool }{
	// no-lost-invocations: every submitted invocation completed (possibly
	// as a recorded failure) — zero silent loss, including across zone
	// outages and chaos storms. Always checked; declaring it is
	// documentation.
	"no-lost-invocations": {},
	// conservation: the routing tier's accounting balances. Sim: the sum
	// of per-node scheduler Submitted counters equals the harness's
	// submissions. Live: platform Submitted == Invocations + Canceled at
	// quiescence. Always checked.
	"conservation": {},
	// zero-failures: no invocation exhausted its retry budget.
	"zero-failures": {},
	// max-failure-rate: failed/submitted must not exceed the value.
	"max-failure-rate": {parameterised: true},
	// all-recovered: no worker is still marked down at the end of the
	// run (every outage's recovery fired).
	"all-recovered": {},
}

// InvariantResult is one evaluated assertion in the report.
type InvariantResult struct {
	// Name is the catalog entry.
	Name string `json:"name"`
	// OK reports whether the assertion held.
	OK bool `json:"ok"`
	// Detail explains the verdict with the numbers that decided it.
	Detail string `json:"detail"`
}

// invariantInputs carries the quiescence-time counters the assertions
// are evaluated against; both runners fill one.
type invariantInputs struct {
	submitted int64
	completed int64
	failed    int64
	// conservationLHS/RHS are the two sides of the accounting identity
	// (per-mode meaning documented in the catalog).
	conservationLHS  int64
	conservationRHS  int64
	conservationExpr string
	downAtEnd        int
}

// evalInvariants evaluates the always-on assertions plus the scenario's
// declared extras, deduplicated, in deterministic order.
func evalInvariants(declared []Invariant, in invariantInputs) []InvariantResult {
	checks := []Invariant{{Name: "no-lost-invocations"}, {Name: "conservation"}}
	seen := map[string]bool{"no-lost-invocations": true, "conservation": true}
	for _, inv := range declared {
		if !seen[inv.Name] {
			seen[inv.Name] = true
			checks = append(checks, inv)
		}
	}
	out := make([]InvariantResult, 0, len(checks))
	for _, inv := range checks {
		out = append(out, evalInvariant(inv, in))
	}
	return out
}

func evalInvariant(inv Invariant, in invariantInputs) InvariantResult {
	r := InvariantResult{Name: inv.Name}
	switch inv.Name {
	case "no-lost-invocations":
		r.OK = in.submitted == in.completed
		r.Detail = fmt.Sprintf("submitted %d, completed %d", in.submitted, in.completed)
	case "conservation":
		r.OK = in.conservationLHS == in.conservationRHS
		r.Detail = fmt.Sprintf("%s: %d vs %d", in.conservationExpr, in.conservationLHS, in.conservationRHS)
	case "zero-failures":
		r.OK = in.failed == 0
		r.Detail = fmt.Sprintf("%d invocations failed", in.failed)
	case "max-failure-rate":
		rate := 0.0
		if in.submitted > 0 {
			rate = float64(in.failed) / float64(in.submitted)
		}
		r.OK = rate <= inv.Value
		r.Detail = fmt.Sprintf("failure rate %.6f, bound %g", rate, inv.Value)
	case "all-recovered":
		r.OK = in.downAtEnd == 0
		r.Detail = fmt.Sprintf("%d workers still down", in.downAtEnd)
	default:
		r.OK = false
		r.Detail = "unknown invariant"
	}
	return r
}

// Violations lists the failed invariants of a report body.
func (b *Body) Violations() []InvariantResult {
	var out []InvariantResult
	for _, r := range b.Invariants {
		if !r.OK {
			out = append(out, r)
		}
	}
	return out
}
