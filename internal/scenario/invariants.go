// invariants.go is the catalog of run assertions a scenario can declare.
// The runner evaluates them at quiescence and records each verdict in the
// report; cmd/faasstress exits non-zero when any fails, so CI treats an
// invariant violation exactly like a failing test.
package scenario

import (
	"fmt"
	"math"
	"time"

	"faasbatch/internal/slo"
)

// newSLOTracker builds a burn-rate tracker over the scenario's slo
// objectives, with the alerting windows scaled so the slow-long window
// spans the whole scenario. Nil when no slo invariants are declared.
func newSLOTracker(sc *Scenario) (*slo.Tracker, error) {
	objs := sc.SLOObjectives()
	if len(objs) == 0 {
		return nil, nil
	}
	return slo.NewTracker(slo.ScaledWindows(sc.TotalDuration()), objs)
}

// sloVerdicts evaluates the tracker at quiescence into the keyed map
// evalInvariants consumes. Statuses come back in objective declaration
// order, which is the declared slo-invariant order.
func sloVerdicts(sc *Scenario, tr *slo.Tracker, now time.Duration) map[string]slo.Status {
	if tr == nil {
		return nil
	}
	statuses := tr.Evaluate(now)
	out := make(map[string]slo.Status, len(statuses))
	i := 0
	for _, inv := range sc.Invariants {
		if inv.Name != "slo" || inv.SLO == nil {
			continue
		}
		if i < len(statuses) {
			out[inv.SLO.key()] = statuses[i]
		}
		i++
	}
	return out
}

// invariantCatalog names the known assertions; parameterised entries take
// a "name: value" form in the scenario file.
var invariantCatalog = map[string]struct{ parameterised bool }{
	// no-lost-invocations: every submitted invocation completed (possibly
	// as a recorded failure) — zero silent loss, including across zone
	// outages and chaos storms. Always checked; declaring it is
	// documentation.
	"no-lost-invocations": {},
	// conservation: the routing tier's accounting balances. Sim: the sum
	// of per-node scheduler Submitted counters equals the harness's
	// submissions. Live: platform Submitted == Invocations + Canceled at
	// quiescence. Always checked.
	"conservation": {},
	// zero-failures: no invocation exhausted its retry budget.
	"zero-failures": {},
	// max-failure-rate: failed/submitted must not exceed the value.
	"max-failure-rate": {parameterised: true},
	// all-recovered: no worker is still marked down at the end of the
	// run (every outage's recovery fired).
	"all-recovered": {},
	// slo: a per-function burn-rate objective (internal/slo) stayed
	// within budget for the whole run — the breach verdict latches at
	// bucket boundaries, so a mid-run storm fails the scenario even if
	// the tail of the run recovers. Takes a mapping parameter:
	//   - slo: {function: f1, p99_ms: 250, max_burn: 2.0}
	"slo": {parameterised: true},
	// min-peak-ready: the autoscaler grew the fleet to at least this
	// many simultaneously ready workers at some sample — the elasticity
	// assertion that a burst actually scaled up.
	"min-peak-ready": {parameterised: true},
	// scaled-to-zero: the fleet was fully retired at quiescence (needs
	// an autoscale block with min-workers 0 and a quiet tail phase
	// longer than scale-to-zero-after).
	"scaled-to-zero": {},
	// max-load-cv: the coefficient of variation (stddev/mean) of
	// per-worker routed-invocation counts must not exceed the value —
	// the load-spread assertion that late binding actually flattens a
	// skewed function mix across the fleet. Sim mode only.
	"max-load-cv": {parameterised: true},
}

// InvariantResult is one evaluated assertion in the report.
type InvariantResult struct {
	// Name is the catalog entry.
	Name string `json:"name"`
	// OK reports whether the assertion held.
	OK bool `json:"ok"`
	// Detail explains the verdict with the numbers that decided it.
	Detail string `json:"detail"`
}

// invariantInputs carries the quiescence-time counters the assertions
// are evaluated against; both runners fill one.
type invariantInputs struct {
	submitted int64
	completed int64
	failed    int64
	// conservationLHS/RHS are the two sides of the accounting identity
	// (per-mode meaning documented in the catalog).
	conservationLHS  int64
	conservationRHS  int64
	conservationExpr string
	downAtEnd        int
	// autoscaleOn, peakReady and readyAtEnd feed the elasticity
	// assertions (peakReady is the max workers_ready across samples).
	autoscaleOn bool
	peakReady   int
	readyAtEnd  int
	// routedPerNode is each worker's routed-invocation count (sim mode;
	// nil in live mode, where there is no fleet routing tier).
	routedPerNode []int
	// slo holds the tracker's end-of-run verdicts, keyed by
	// SLOSpec.key(), when the scenario declared slo invariants.
	slo map[string]slo.Status
}

// loadCV is the coefficient of variation (stddev/mean) of the
// per-worker routed counts: 0 for a perfectly even spread, higher the
// more load concentrates on few workers.
func loadCV(routed []int) float64 {
	if len(routed) == 0 {
		return 0
	}
	var sum float64
	for _, r := range routed {
		sum += float64(r)
	}
	mean := sum / float64(len(routed))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, r := range routed {
		d := float64(r) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(routed))) / mean
}

// evalInvariants evaluates the always-on assertions plus the scenario's
// declared extras, deduplicated, in deterministic order.
func evalInvariants(declared []Invariant, in invariantInputs) []InvariantResult {
	checks := []Invariant{{Name: "no-lost-invocations"}, {Name: "conservation"}}
	seen := map[string]bool{"no-lost-invocations": true, "conservation": true}
	for _, inv := range declared {
		key := inv.Name
		if inv.SLO != nil {
			// slo invariants dedupe per objective, not per name: one
			// scenario may bound several functions.
			key += "|" + inv.SLO.key()
		}
		if !seen[key] {
			seen[key] = true
			checks = append(checks, inv)
		}
	}
	out := make([]InvariantResult, 0, len(checks))
	for _, inv := range checks {
		out = append(out, evalInvariant(inv, in))
	}
	return out
}

func evalInvariant(inv Invariant, in invariantInputs) InvariantResult {
	r := InvariantResult{Name: inv.Name}
	switch inv.Name {
	case "no-lost-invocations":
		r.OK = in.submitted == in.completed
		r.Detail = fmt.Sprintf("submitted %d, completed %d", in.submitted, in.completed)
	case "conservation":
		r.OK = in.conservationLHS == in.conservationRHS
		r.Detail = fmt.Sprintf("%s: %d vs %d", in.conservationExpr, in.conservationLHS, in.conservationRHS)
	case "zero-failures":
		r.OK = in.failed == 0
		r.Detail = fmt.Sprintf("%d invocations failed", in.failed)
	case "max-failure-rate":
		rate := 0.0
		if in.submitted > 0 {
			rate = float64(in.failed) / float64(in.submitted)
		}
		r.OK = rate <= inv.Value
		r.Detail = fmt.Sprintf("failure rate %.6f, bound %g", rate, inv.Value)
	case "all-recovered":
		r.OK = in.downAtEnd == 0
		r.Detail = fmt.Sprintf("%d workers still down", in.downAtEnd)
	case "min-peak-ready":
		r.OK = in.autoscaleOn && in.peakReady >= int(inv.Value)
		if !in.autoscaleOn {
			r.Detail = "scenario has no autoscale block"
			break
		}
		r.Detail = fmt.Sprintf("peak ready workers %d, bound %g", in.peakReady, inv.Value)
	case "scaled-to-zero":
		r.OK = in.autoscaleOn && in.readyAtEnd == 0
		if !in.autoscaleOn {
			r.Detail = "scenario has no autoscale block"
			break
		}
		r.Detail = fmt.Sprintf("%d workers still ready at quiescence", in.readyAtEnd)
	case "max-load-cv":
		if in.routedPerNode == nil {
			r.Detail = "no per-worker routing counts (live mode)"
			break
		}
		cv := loadCV(in.routedPerNode)
		r.OK = cv <= inv.Value
		r.Detail = fmt.Sprintf("load spread CV %.4f over %d workers, bound %g", cv, len(in.routedPerNode), inv.Value)
	case "slo":
		if inv.SLO == nil {
			r.Detail = "slo invariant without an objective"
			break
		}
		st, ok := in.slo[inv.SLO.key()]
		if !ok {
			r.Detail = fmt.Sprintf("no burn-rate verdict for fn %q", inv.SLO.Function)
			break
		}
		r.OK = !st.Breached
		r.Detail = fmt.Sprintf("fn %s q%g target %v: peak fast burn %.3f, peak slow burn %.3f, bound %g (%d/%d bad)",
			st.Function, st.Quantile, st.Target, st.MaxFastBurn, st.MaxSlowBurn, st.MaxBurn, st.Bad, st.Total)
	default:
		r.OK = false
		r.Detail = "unknown invariant"
	}
	return r
}

// Violations lists the failed invariants of a report body.
func (b *Body) Violations() []InvariantResult {
	var out []InvariantResult
	for _, r := range b.Invariants {
		if !r.OK {
			out = append(out, r)
		}
	}
	return out
}
