package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLScenarioShape(t *testing.T) {
	src := []byte(`
# comment line
scenario: demo   # trailing comment
seed: 42
ratio: 0.5
enabled: true
empty-list: []
empty-map: {}
nothing: null
quoted: "a: b # not a comment"
single: 'it''s'
fleet:
  workers: 10
  templates:
    - name: small
      cores: 4
    - name: big
      cores: 16
mix:
  - fib
  - 27
  -
`)
	v, err := ParseYAML(src)
	if err != nil {
		t.Fatalf("ParseYAML: %v", err)
	}
	want := map[string]any{
		"scenario":   "demo",
		"seed":       int64(42),
		"ratio":      0.5,
		"enabled":    true,
		"empty-list": []any{},
		"empty-map":  map[string]any{},
		"nothing":    nil,
		"quoted":     "a: b # not a comment",
		"single":     "it's",
		"fleet": map[string]any{
			"workers": int64(10),
			"templates": []any{
				map[string]any{"name": "small", "cores": int64(4)},
				map[string]any{"name": "big", "cores": int64(16)},
			},
		},
		"mix": []any{"fib", int64(27), nil},
	}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("parse tree mismatch:\n got %#v\nwant %#v", v, want)
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# only comments\n  # more\n"} {
		v, err := ParseYAML([]byte(src))
		if err != nil || v != nil {
			t.Errorf("ParseYAML(%q) = %v, %v; want nil, nil", src, v, err)
		}
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"tab indent", "a:\n\tb: 1"},
		{"duplicate key", "a: 1\na: 2"},
		{"unterminated quote", `a: "oops`},
		{"content after quote", `a: "x" y`},
		{"dangling escape", `a: "x\`},
		{"bad escape", `a: "\q"`},
		{"seq in mapping", "a: 1\n- b"},
		{"scalar then deeper", "a: 1\n  b: 2"},
		{"no key", "a:\n  just a scalar\n  and another"},
	}
	for _, tc := range cases {
		if _, err := ParseYAML([]byte(tc.src)); err == nil {
			t.Errorf("%s: no error for %q", tc.name, tc.src)
		}
	}
}

func TestParseYAMLDepthCap(t *testing.T) {
	var b strings.Builder
	for i := 0; i < maxYAMLDepth+8; i++ {
		b.WriteString(strings.Repeat(" ", i))
		b.WriteString("k:\n")
	}
	if _, err := ParseYAML([]byte(b.String())); err == nil {
		t.Fatal("no error for nesting past the depth cap")
	}
}

func TestParseYAMLSequenceOfScalars(t *testing.T) {
	v, err := ParseYAML([]byte("- 1\n- two\n- 3.5\n"))
	if err != nil {
		t.Fatalf("ParseYAML: %v", err)
	}
	want := []any{int64(1), "two", 3.5}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("got %#v, want %#v", v, want)
	}
}

// FuzzParseYAML is the parser's no-panic guarantee: arbitrary input must
// produce a value or an error, never a panic, hang or unbounded
// recursion. The corpus seeds the grammar's tricky corners; go test runs
// the corpus as a regression suite even without -fuzz.
func FuzzParseYAML(f *testing.F) {
	seeds := []string{
		"",
		"a: 1",
		"a:\n  b:\n    - c: 2\n      d: 'e'\n",
		"- -\n- - x\n",
		"a: \"unterminated",
		"k: v # comment\n# full comment\n",
		"a:\n - b\n  - c\n",
		"deep:\n" + strings.Repeat(" ", 64) + "k: v\n",
		"'k: ': 'v'\n\"q\": \"w\"\n",
		"a: []\nb: {}\nc: ~\n",
		"\xff\xfe: \x00",
		"scenario: x\nphases:\n  - name: p\n    duration: 1s\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ParseYAML(data)
		if err != nil && v != nil {
			t.Errorf("both value and error returned: %v / %v", v, err)
		}
	})
}
