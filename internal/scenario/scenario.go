// Package scenario is the declarative proving ground for FaaSBatch: YAML
// scenarios declare a worker fleet (weighted templates), workload phases
// (arrival process, function mix, ramps), a seeded chaos schedule
// (per-phase fault rates, zone-style cascading outages), a metrics
// sampling interval and invariant assertions. The runner replays a
// scenario through the discrete-event simulator at fleet scale (hundreds
// of workers, millions of invocations in one seeded, reproducible run)
// or through the live platform for small smoke scenarios, and emits a
// versioned JSON report plus an HTML summary that CI can diff and
// archive. See docs/STRESS.md for the schema and the reproducibility
// contract.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"faasbatch/internal/autoscale"
	"faasbatch/internal/chaos"
	"faasbatch/internal/cluster"
	"faasbatch/internal/slo"
)

// Mode selects the execution substrate.
type Mode int

// Execution modes.
const (
	// ModeSim replays the scenario through the discrete-event simulator:
	// deterministic, fleet-scale, virtual time.
	ModeSim Mode = iota + 1
	// ModeLive drives the in-process live platform (wall clock, real
	// goroutines) — for small smoke scenarios only.
	ModeLive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSim:
		return "sim"
	case ModeLive:
		return "live"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Template is one weighted worker shape in the fleet section. Zero
// fields inherit the simulator node defaults (node.DefaultConfig).
type Template struct {
	// Name labels the template in reports.
	Name string
	// Weight is the template's share of the fleet (default 1).
	Weight float64
	// Cores is the worker's CPU cores.
	Cores float64
	// MemBytes is the worker's memory capacity.
	MemBytes int64
	// KeepAlive is the idle-container retention window.
	KeepAlive time.Duration
	// ColdStart is the non-CPU part of a container boot.
	ColdStart time.Duration
	// CreateConcurrency bounds parallel container creations.
	CreateConcurrency int
}

// Fleet declares the simulated worker fleet.
type Fleet struct {
	// Workers is the fleet size.
	Workers int
	// Zones partitions workers into failure domains (worker i belongs to
	// zone i mod Zones); outages target zones. Default 1.
	Zones int
	// Templates are the weighted worker shapes; empty means one default
	// worker template.
	Templates []Template
}

// Dispatch configures every worker's FaaSBatch scheduler and the
// cluster's routing policy.
type Dispatch struct {
	// Adaptive enables the load-aware dispatch windows of PR 5.
	Adaptive bool
	// Interval is the fixed window (or adaptive cap). Zero: core default.
	Interval time.Duration
	// MinInterval is the adaptive floor. Zero: core default.
	MinInterval time.Duration
	// MaxGroupSize early-closes adaptive windows. Zero: unbounded.
	MaxGroupSize int
	// Balancing is the routing strategy (default fn-affinity).
	Balancing cluster.Balancing
	// MaxRetries bounds re-batches after container faults. Negative
	// disables retries; zero takes the core default.
	MaxRetries int
}

// Routing selects the cluster's scheduling policy at the scenario top
// level, overriding dispatch.balancing: "pull" parks invocations in the
// sharded per-function queues of internal/pullsched and late-binds each
// to the least-loaded worker with free capacity; "hash" is the
// consistent-hash push baseline the pull experiments compare against.
// Sim mode only — the live smoke path has no fleet routing tier.
type Routing struct {
	// Policy is "pull" or "hash".
	Policy string
	// QueueDepth bounds each function queue before arrivals shed
	// (pull only; 0 = unbounded).
	QueueDepth int
	// Batch caps grants handed to one worker per pull (pull only;
	// 0 = pullsched default).
	Batch int
	// Capacity is the concurrent leases one worker absorbs (pull only;
	// 0 = pullsched default).
	Capacity int
}

// ChaosTuning carries the injector-wide knobs; per-phase rates live on
// the phases.
type ChaosTuning struct {
	// ColdStartFactor multiplies a SlowColdStart victim's boot. Zero: 5.
	ColdStartFactor float64
	// Hang is the injected handler-hang duration (live mode). Zero: 2s.
	Hang time.Duration
}

// MixEntry is one weighted workload family in a phase's function mix.
type MixEntry struct {
	// Fn is the function-name stem; with Instances > 1 the generated
	// functions are fn-0 .. fn-(Instances-1).
	Fn string
	// Weight is the entry's share of arrivals (default 1).
	Weight float64
	// Instances spreads the entry over that many distinct functions
	// (default 1). Distinct functions are what fleet routing distributes.
	Instances int
	// IO selects the storage-client workload family instead of fib.
	IO bool
	// FibN fixes the Fibonacci input; zero samples the paper's Fig. 9
	// duration distribution per invocation.
	FibN int
}

// Outage is one zone-style failure event inside a phase: the zone's
// workers are marked down (stopping new routing, draining in-flight
// work), in cascade order when Cascade is positive, and marked back up
// after Duration.
type Outage struct {
	// Zone is the failure domain (worker i is in zone i mod Zones).
	Zone int
	// At is the outage start, relative to the phase start.
	At time.Duration
	// Duration is how long each worker stays down.
	Duration time.Duration
	// Cascade staggers the zone's workers going down across this span —
	// a rolling failure instead of an instantaneous one. Zero downs the
	// whole zone at once.
	Cascade time.Duration
}

// Phase is one workload segment.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// Duration is the phase length.
	Duration time.Duration
	// Arrival selects the arrival process: "poisson" (default),
	// "constant" or "bursty".
	Arrival string
	// Rate is the mean arrival rate in invocations per second. Zero
	// means a quiet phase (no arrivals).
	Rate float64
	// Ramp linearly ramps the rate from zero over this span at the
	// phase's start. Zero starts at full rate.
	Ramp time.Duration
	// BurstSize is the mean invocations per burst ("bursty" only;
	// default 20).
	BurstSize int
	// BurstIaT is the mean gap inside a burst ("bursty" only; default
	// 5ms).
	BurstIaT time.Duration
	// Mix is the weighted function mix. Required when Rate > 0.
	Mix []MixEntry
	// Chaos is the injector rate table for the phase's span; kinds
	// absent here inject nothing during the phase. A phase without a
	// chaos section runs clean.
	Chaos map[chaos.Kind]float64
	// Outages are the phase's zone failures.
	Outages []Outage
}

// Invariant names a run assertion, optionally parameterised.
type Invariant struct {
	// Name identifies the assertion (see invariants.go for the catalog).
	Name string
	// Value parameterises rate-style invariants (e.g. max-failure-rate).
	Value float64
	// SLO parameterises the "slo" invariant.
	SLO *SLOSpec
}

// SLOSpec declares one per-function burn-rate objective for the "slo"
// invariant: the run fails when the function's multi-window error-budget
// burn (internal/slo, windows scaled to the scenario span) crosses
// MaxBurn at any point of the run.
//
//   - slo: {function: f1, p99_ms: 250, max_burn: 2.0}
//   - slo: {function: f2, availability: 0.999, max_burn: 4}
type SLOSpec struct {
	// Function is the objective's target function name.
	Function string
	// Quantile is the objective quantile (0.99 for p99_ms, etc.); its
	// complement is the error budget.
	Quantile float64
	// Target is the latency bound; zero means a pure availability
	// objective (only failures burn budget).
	Target time.Duration
	// MaxBurn is the breach threshold on the paired burn rates
	// (default 2).
	MaxBurn float64
}

// Objective converts the spec to its internal/slo form.
func (s *SLOSpec) Objective() slo.Objective {
	return slo.Objective{Function: s.Function, Quantile: s.Quantile, Target: s.Target, MaxBurn: s.MaxBurn}
}

// key identifies the objective for dedupe and status lookup.
func (s *SLOSpec) key() string {
	return fmt.Sprintf("%s|%g|%s|%g", s.Function, s.Quantile, s.Target, s.MaxBurn)
}

// SLOObjectives collects the scenario's slo invariants in declaration
// order, for seeding a tracker.
func (s *Scenario) SLOObjectives() []slo.Objective {
	var out []slo.Objective
	for _, inv := range s.Invariants {
		if inv.Name == "slo" && inv.SLO != nil {
			out = append(out, inv.SLO.Objective())
		}
	}
	return out
}

// Scenario is a fully decoded scenario file.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Seed fixes arrivals, fleet generation and the fault schedule: two
	// sim runs of one (scenario, seed) produce byte-identical report
	// bodies.
	Seed int64
	// Mode selects sim or live execution (default sim).
	Mode Mode
	// Fleet declares the workers.
	Fleet Fleet
	// Dispatch configures scheduling and routing.
	Dispatch Dispatch
	// Routing optionally overrides the routing policy (sim mode only):
	// "pull" runs the worker-pull late-binding scheduler, "hash" the
	// consistent-hash push baseline.
	Routing *Routing
	// Autoscale optionally runs the predictive autoscaling control plane
	// over the fleet (sim mode only): fleet.workers bounds the maximum
	// size and the controller grows/shrinks ring membership with demand.
	// Note that with autoscaling on, standby workers count as "down" in
	// samples and the all-recovered invariant.
	Autoscale *autoscale.Config
	// Chaos carries injector-wide tuning.
	Chaos ChaosTuning
	// Sampling is the metrics sampling interval (default 1s).
	Sampling time.Duration
	// MaxDrain bounds the post-workload quiescence wait in virtual time
	// (default 1h): a scenario whose work cannot drain fails instead of
	// spinning forever.
	MaxDrain time.Duration
	// Phases is the workload timeline.
	Phases []Phase
	// Invariants are the scenario's extra assertions; the conservation
	// invariants are always checked.
	Invariants []Invariant
	// LiveTimeScale compresses live-mode wall time: phase durations and
	// arrival gaps are divided by it (default 1; sim ignores it).
	LiveTimeScale float64
}

// DisableChaos strips every phase's fault-injection rates, leaving
// arrivals, outages and invariants intact. cmd/faasstress -no-chaos uses
// it to prove an SLO invariant holds on the fault-free baseline of the
// same scenario.
func (s *Scenario) DisableChaos() {
	for i := range s.Phases {
		s.Phases[i].Chaos = nil
	}
}

// TotalDuration sums the phase durations.
func (s *Scenario) TotalDuration() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// ExpectedInvocations estimates the arrival count: the sum over phases
// of rate x effective duration (ramps count half).
func (s *Scenario) ExpectedInvocations() int64 {
	var total float64
	for _, p := range s.Phases {
		eff := p.Duration.Seconds()
		if p.Ramp > 0 {
			ramp := p.Ramp.Seconds()
			if ramp > eff {
				ramp = eff
			}
			eff -= ramp / 2
		}
		total += p.Rate * eff
	}
	return int64(total)
}

// Parse decodes and validates a scenario file.
func Parse(src []byte) (*Scenario, error) {
	root, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	m, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: top level must be a mapping")
	}
	d := &decoder{}
	sc := d.scenario(m)
	if d.err != nil {
		return nil, d.err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// validate checks cross-field constraints after decoding.
func (s *Scenario) validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing \"scenario\" name")
	}
	if s.Fleet.Workers <= 0 {
		return fmt.Errorf("scenario: fleet.workers must be positive, got %d", s.Fleet.Workers)
	}
	if s.Fleet.Zones <= 0 || s.Fleet.Zones > s.Fleet.Workers {
		return fmt.Errorf("scenario: fleet.zones must be in [1, workers], got %d", s.Fleet.Zones)
	}
	for i, t := range s.Fleet.Templates {
		if t.Weight < 0 {
			return fmt.Errorf("scenario: fleet template %d: negative weight", i)
		}
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario: at least one phase is required")
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("scenario: phase %d (%s): duration must be positive", i, p.Name)
		}
		if p.Rate < 0 {
			return fmt.Errorf("scenario: phase %d (%s): negative rate", i, p.Name)
		}
		if p.Rate > 0 && len(p.Mix) == 0 {
			return fmt.Errorf("scenario: phase %d (%s): rate %g with an empty mix", i, p.Name, p.Rate)
		}
		switch p.Arrival {
		case "poisson", "constant", "bursty":
		default:
			return fmt.Errorf("scenario: phase %d (%s): unknown arrival process %q", i, p.Name, p.Arrival)
		}
		var weight float64
		for j, e := range p.Mix {
			if e.Fn == "" {
				return fmt.Errorf("scenario: phase %d mix %d: missing fn", i, j)
			}
			if e.Weight < 0 {
				return fmt.Errorf("scenario: phase %d mix %d: negative weight", i, j)
			}
			weight += e.Weight
			if e.Instances < 1 || e.Instances > 1<<20 {
				return fmt.Errorf("scenario: phase %d mix %d: instances must be in [1, 2^20], got %d", i, j, e.Instances)
			}
			if e.IO && e.FibN != 0 {
				return fmt.Errorf("scenario: phase %d mix %d: io and fib-n are mutually exclusive", i, j)
			}
		}
		if p.Rate > 0 && weight <= 0 {
			return fmt.Errorf("scenario: phase %d (%s): mix weights sum to zero", i, p.Name)
		}
		for k, r := range p.Chaos {
			if r < 0 || r >= 1 {
				return fmt.Errorf("scenario: phase %d (%s): chaos rate for %v must be in [0, 1), got %g", i, p.Name, k, r)
			}
		}
		for j, o := range p.Outages {
			if o.Zone < 0 || o.Zone >= s.Fleet.Zones {
				return fmt.Errorf("scenario: phase %d outage %d: zone %d out of range [0, %d)", i, j, o.Zone, s.Fleet.Zones)
			}
			if o.At < 0 || o.Duration <= 0 || o.Cascade < 0 {
				return fmt.Errorf("scenario: phase %d outage %d: at/duration/cascade must be non-negative (duration positive)", i, j)
			}
		}
	}
	for i, inv := range s.Invariants {
		if _, ok := invariantCatalog[inv.Name]; !ok {
			return fmt.Errorf("scenario: invariant %d: unknown name %q", i, inv.Name)
		}
		if inv.Name == "slo" {
			if inv.SLO == nil {
				return fmt.Errorf("scenario: invariant %d: slo needs its objective mapping", i)
			}
			if err := inv.SLO.Objective().Validate(); err != nil {
				return fmt.Errorf("scenario: invariant %d: %w", i, err)
			}
		}
	}
	if s.LiveTimeScale <= 0 {
		return fmt.Errorf("scenario: live-time-scale must be positive, got %g", s.LiveTimeScale)
	}
	if s.Routing != nil {
		if s.Mode != ModeSim {
			return fmt.Errorf("scenario: routing requires mode: sim (the live smoke path has no fleet routing tier)")
		}
		switch s.Routing.Policy {
		case "pull":
		case "hash":
			if s.Routing.QueueDepth != 0 || s.Routing.Batch != 0 || s.Routing.Capacity != 0 {
				return fmt.Errorf("scenario: routing queue-depth/batch/capacity tune the pull policy, not %q", s.Routing.Policy)
			}
		default:
			return fmt.Errorf("scenario: routing.policy must be \"pull\" or \"hash\", got %q", s.Routing.Policy)
		}
		if s.Routing.QueueDepth < 0 || s.Routing.Batch < 0 || s.Routing.Capacity < 0 {
			return fmt.Errorf("scenario: routing queue-depth/batch/capacity must be non-negative")
		}
	}
	if s.Autoscale != nil {
		if s.Mode != ModeSim {
			return fmt.Errorf("scenario: autoscale requires mode: sim (the live smoke path has no fleet driver)")
		}
		resolved := *s.Autoscale
		if resolved.MaxWorkers <= 0 || resolved.MaxWorkers > s.Fleet.Workers {
			resolved.MaxWorkers = s.Fleet.Workers
		}
		if err := resolved.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// decoder walks the parsed YAML tree, accumulating the first error with
// a dotted path for context.
type decoder struct {
	err error
}

func (d *decoder) fail(path, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: %s: %s", path, fmt.Sprintf(format, args...))
	}
}

// section extracts a nested mapping (nil when absent).
func (d *decoder) section(m map[string]any, path, key string) map[string]any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	sub, ok := v.(map[string]any)
	if !ok {
		d.fail(path+"."+key, "expected a mapping")
		return nil
	}
	return sub
}

// list extracts a nested sequence (nil when absent).
func (d *decoder) list(m map[string]any, path, key string) []any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	seq, ok := v.([]any)
	if !ok {
		d.fail(path+"."+key, "expected a sequence")
		return nil
	}
	return seq
}

func (d *decoder) str(m map[string]any, path, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.fail(path+"."+key, "expected a string, got %T", v)
		return def
	}
	return s
}

func (d *decoder) boolean(m map[string]any, path, key string, def bool) bool {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		d.fail(path+"."+key, "expected a boolean, got %T", v)
		return def
	}
	return b
}

func (d *decoder) integer(m map[string]any, path, key string, def int64) int64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	n, ok := v.(int64)
	if !ok {
		d.fail(path+"."+key, "expected an integer, got %T", v)
		return def
	}
	return n
}

func (d *decoder) float(m map[string]any, path, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	default:
		d.fail(path+"."+key, "expected a number, got %T", v)
		return def
	}
}

// duration reads a time.ParseDuration string ("250ms", "1m30s").
func (d *decoder) duration(m map[string]any, path, key string, def time.Duration) time.Duration {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.fail(path+"."+key, "expected a duration string like \"250ms\", got %T", v)
		return def
	}
	dur, err := time.ParseDuration(s)
	if err != nil {
		d.fail(path+"."+key, "bad duration %q", s)
		return def
	}
	return dur
}

// bytes reads a byte size: an integer, or a string with a KiB/MiB/GiB/
// KB/MB/GB suffix.
func (d *decoder) bytes(m map[string]any, path, key string, def int64) int64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case int64:
		return n
	case string:
		b, err := parseBytes(n)
		if err != nil {
			d.fail(path+"."+key, "%v", err)
			return def
		}
		return b
	default:
		d.fail(path+"."+key, "expected a byte size, got %T", v)
		return def
	}
}

// parseBytes converts "16GiB" / "512MB" / "64" style sizes.
func parseBytes(s string) (int64, error) {
	units := []struct {
		suffix string
		mult   int64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3}, {"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			f, err := strconv.ParseFloat(num, 64)
			if err != nil || f < 0 {
				return 0, fmt.Errorf("bad byte size %q", s)
			}
			return int64(f * float64(u.mult)), nil
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n, nil
}

// known rejects unrecognised keys, the defence against typo'd scenarios
// silently running with defaults.
func (d *decoder) known(m map[string]any, path string, keys ...string) {
	allowed := map[string]bool{}
	for _, k := range keys {
		allowed[k] = true
	}
	var unknown []string
	for k := range m {
		if !allowed[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		d.fail(path, "unknown key %q", unknown[0])
	}
}

func (d *decoder) scenario(m map[string]any) *Scenario {
	d.known(m, "top level", "scenario", "seed", "mode", "fleet", "dispatch", "routing",
		"autoscale", "chaos", "sampling", "max-drain", "phases", "invariants", "live-time-scale")
	sc := &Scenario{
		Name:          d.str(m, "", "scenario", ""),
		Seed:          d.integer(m, "", "seed", 1),
		Sampling:      d.duration(m, "", "sampling", time.Second),
		MaxDrain:      d.duration(m, "", "max-drain", time.Hour),
		LiveTimeScale: d.float(m, "", "live-time-scale", 1),
	}
	switch mode := d.str(m, "", "mode", "sim"); mode {
	case "sim":
		sc.Mode = ModeSim
	case "live":
		sc.Mode = ModeLive
	default:
		d.fail("mode", "must be \"sim\" or \"live\", got %q", mode)
	}
	sc.Fleet = d.fleet(d.section(m, "", "fleet"))
	sc.Dispatch = d.dispatch(d.section(m, "", "dispatch"))
	sc.Routing = d.routing(d.section(m, "", "routing"))
	sc.Autoscale = d.autoscale(d.section(m, "", "autoscale"))
	sc.Chaos = d.chaosTuning(d.section(m, "", "chaos"))
	for i, v := range d.list(m, "", "phases") {
		path := fmt.Sprintf("phases[%d]", i)
		pm, ok := v.(map[string]any)
		if !ok {
			d.fail(path, "expected a mapping")
			continue
		}
		sc.Phases = append(sc.Phases, d.phase(pm, path))
	}
	for i, v := range d.list(m, "", "invariants") {
		path := fmt.Sprintf("invariants[%d]", i)
		switch iv := v.(type) {
		case string:
			sc.Invariants = append(sc.Invariants, Invariant{Name: iv})
		case map[string]any:
			if len(iv) != 1 {
				d.fail(path, "expected one \"name: value\" pair")
				continue
			}
			for name, val := range iv {
				if name == "slo" {
					sm, ok := val.(map[string]any)
					if !ok {
						d.fail(path, "slo expects a mapping like {function: f1, p99_ms: 250, max_burn: 2}")
						continue
					}
					sc.Invariants = append(sc.Invariants, Invariant{Name: name, SLO: d.sloSpec(sm, path)})
					continue
				}
				f, ok := toFloat(val)
				if !ok {
					d.fail(path, "expected a numeric value for %q", name)
					continue
				}
				sc.Invariants = append(sc.Invariants, Invariant{Name: name, Value: f})
			}
		default:
			d.fail(path, "expected an invariant name or \"name: value\"")
		}
	}
	return sc
}

// sloQuantileKeys maps the latency-objective keys to their quantiles.
var sloQuantileKeys = []struct {
	key      string
	quantile float64
}{
	{"p50_ms", 0.5}, {"p90_ms", 0.9}, {"p95_ms", 0.95}, {"p99_ms", 0.99},
}

// sloSpec decodes one slo invariant mapping: a function, exactly one
// objective key (pXX_ms latency bound or availability quantile) and an
// optional max_burn threshold.
func (d *decoder) sloSpec(m map[string]any, path string) *SLOSpec {
	d.known(m, path, "function", "p50_ms", "p90_ms", "p95_ms", "p99_ms", "availability", "max_burn")
	spec := &SLOSpec{
		Function: d.str(m, path, "function", ""),
		MaxBurn:  d.float(m, path, "max_burn", 2),
	}
	objectives := 0
	for _, qk := range sloQuantileKeys {
		if _, ok := m[qk.key]; !ok {
			continue
		}
		objectives++
		spec.Quantile = qk.quantile
		ms := d.float(m, path, qk.key, 0)
		if ms <= 0 {
			d.fail(path, "%s must be a positive millisecond bound, got %g", qk.key, ms)
		}
		spec.Target = time.Duration(ms * float64(time.Millisecond))
	}
	if _, ok := m["availability"]; ok {
		objectives++
		spec.Quantile = d.float(m, path, "availability", 0)
	}
	if objectives != 1 {
		d.fail(path, "slo needs exactly one objective key (p50_ms/p90_ms/p95_ms/p99_ms or availability), got %d", objectives)
	}
	return spec
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	default:
		return 0, false
	}
}

func (d *decoder) fleet(m map[string]any) Fleet {
	f := Fleet{Workers: 1, Zones: 1}
	if m == nil {
		return f
	}
	d.known(m, "fleet", "workers", "zones", "templates")
	f.Workers = int(d.integer(m, "fleet", "workers", 1))
	f.Zones = int(d.integer(m, "fleet", "zones", 1))
	for i, v := range d.list(m, "fleet", "templates") {
		path := fmt.Sprintf("fleet.templates[%d]", i)
		tm, ok := v.(map[string]any)
		if !ok {
			d.fail(path, "expected a mapping")
			continue
		}
		d.known(tm, path, "name", "weight", "cores", "mem", "keepalive", "coldstart", "create-concurrency")
		f.Templates = append(f.Templates, Template{
			Name:              d.str(tm, path, "name", fmt.Sprintf("template-%d", i)),
			Weight:            d.float(tm, path, "weight", 1),
			Cores:             d.float(tm, path, "cores", 0),
			MemBytes:          d.bytes(tm, path, "mem", 0),
			KeepAlive:         d.duration(tm, path, "keepalive", 0),
			ColdStart:         d.duration(tm, path, "coldstart", 0),
			CreateConcurrency: int(d.integer(tm, path, "create-concurrency", 0)),
		})
	}
	return f
}

func (d *decoder) dispatch(m map[string]any) Dispatch {
	dc := Dispatch{Balancing: cluster.FnAffinity}
	if m == nil {
		return dc
	}
	d.known(m, "dispatch", "adaptive", "interval", "min-interval", "max-group", "balancing", "max-retries")
	dc.Adaptive = d.boolean(m, "dispatch", "adaptive", false)
	dc.Interval = d.duration(m, "dispatch", "interval", 0)
	dc.MinInterval = d.duration(m, "dispatch", "min-interval", 0)
	dc.MaxGroupSize = int(d.integer(m, "dispatch", "max-group", 0))
	dc.MaxRetries = int(d.integer(m, "dispatch", "max-retries", 0))
	switch b := d.str(m, "dispatch", "balancing", "fn-affinity"); b {
	case "fn-affinity":
		dc.Balancing = cluster.FnAffinity
	case "least-loaded":
		dc.Balancing = cluster.LeastLoaded
	case "round-robin":
		dc.Balancing = cluster.RoundRobin
	case "consistent-hash":
		dc.Balancing = cluster.ConsistentHash
	default:
		d.fail("dispatch.balancing", "unknown strategy %q", b)
	}
	return dc
}

// routing decodes the optional routing-policy block.
func (d *decoder) routing(m map[string]any) *Routing {
	if m == nil {
		return nil
	}
	d.known(m, "routing", "policy", "queue-depth", "batch", "capacity")
	return &Routing{
		Policy:     d.str(m, "routing", "policy", ""),
		QueueDepth: int(d.integer(m, "routing", "queue-depth", 0)),
		Batch:      int(d.integer(m, "routing", "batch", 0)),
		Capacity:   int(d.integer(m, "routing", "capacity", 0)),
	}
}

// autoscale decodes the optional autoscaling block. Absent keys keep
// autoscale.Config defaults; max-workers 0 clamps to the fleet size at
// run time. target-per-worker is the one required knob.
func (d *decoder) autoscale(m map[string]any) *autoscale.Config {
	if m == nil {
		return nil
	}
	d.known(m, "autoscale", "min-workers", "max-workers", "target-per-worker",
		"headroom", "eval-interval", "warmup", "drain-budget", "scale-down-after",
		"scale-to-zero-after", "prewarm-quantile", "alpha")
	return &autoscale.Config{
		MinWorkers:       int(d.integer(m, "autoscale", "min-workers", 0)),
		MaxWorkers:       int(d.integer(m, "autoscale", "max-workers", 0)),
		TargetPerWorker:  d.float(m, "autoscale", "target-per-worker", 0),
		Headroom:         d.float(m, "autoscale", "headroom", 0),
		EvalInterval:     d.duration(m, "autoscale", "eval-interval", 0),
		Warmup:           d.duration(m, "autoscale", "warmup", 0),
		DrainBudget:      d.duration(m, "autoscale", "drain-budget", 0),
		ScaleDownAfter:   int(d.integer(m, "autoscale", "scale-down-after", 0)),
		ScaleToZeroAfter: d.duration(m, "autoscale", "scale-to-zero-after", 0),
		PrewarmQuantile:  d.float(m, "autoscale", "prewarm-quantile", 0),
		Alpha:            d.float(m, "autoscale", "alpha", 0),
	}
}

func (d *decoder) chaosTuning(m map[string]any) ChaosTuning {
	var c ChaosTuning
	if m == nil {
		return c
	}
	d.known(m, "chaos", "cold-start-factor", "hang")
	c.ColdStartFactor = d.float(m, "chaos", "cold-start-factor", 0)
	c.Hang = d.duration(m, "chaos", "hang", 0)
	return c
}

func (d *decoder) phase(m map[string]any, path string) Phase {
	d.known(m, path, "name", "duration", "arrival", "rate", "ramp",
		"burst-size", "burst-iat", "mix", "chaos", "outages")
	p := Phase{
		Name:      d.str(m, path, "name", ""),
		Duration:  d.duration(m, path, "duration", 0),
		Arrival:   d.str(m, path, "arrival", "poisson"),
		Rate:      d.float(m, path, "rate", 0),
		Ramp:      d.duration(m, path, "ramp", 0),
		BurstSize: int(d.integer(m, path, "burst-size", 20)),
		BurstIaT:  d.duration(m, path, "burst-iat", 5*time.Millisecond),
	}
	if p.Name == "" {
		p.Name = strings.TrimPrefix(path, "phases")
	}
	for i, v := range d.list(m, path, "mix") {
		mpath := fmt.Sprintf("%s.mix[%d]", path, i)
		mm, ok := v.(map[string]any)
		if !ok {
			d.fail(mpath, "expected a mapping")
			continue
		}
		d.known(mm, mpath, "fn", "weight", "instances", "io", "fib-n")
		p.Mix = append(p.Mix, MixEntry{
			Fn:        d.str(mm, mpath, "fn", ""),
			Weight:    d.float(mm, mpath, "weight", 1),
			Instances: int(d.integer(mm, mpath, "instances", 1)),
			IO:        d.boolean(mm, mpath, "io", false),
			FibN:      int(d.integer(mm, mpath, "fib-n", 0)),
		})
	}
	if cm := d.section(m, path, "chaos"); cm != nil {
		p.Chaos = map[chaos.Kind]float64{}
		for name, v := range cm {
			kind, ok := chaos.KindByName(name)
			if !ok {
				d.fail(path+".chaos", "unknown fault kind %q", name)
				continue
			}
			rate, ok := toFloat(v)
			if !ok {
				d.fail(path+".chaos", "expected a numeric rate for %q", name)
				continue
			}
			p.Chaos[kind] = rate
		}
	}
	for i, v := range d.list(m, path, "outages") {
		opath := fmt.Sprintf("%s.outages[%d]", path, i)
		om, ok := v.(map[string]any)
		if !ok {
			d.fail(opath, "expected a mapping")
			continue
		}
		d.known(om, opath, "zone", "at", "duration", "cascade")
		p.Outages = append(p.Outages, Outage{
			Zone:     int(d.integer(om, opath, "zone", 0)),
			At:       d.duration(om, opath, "at", 0),
			Duration: d.duration(om, opath, "duration", 0),
			Cascade:  d.duration(om, opath, "cascade", 0),
		})
	}
	return p
}
