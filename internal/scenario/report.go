// report.go defines the versioned run report and its serialisations.
//
// The reproducibility contract: Body is a pure function of (scenario,
// seed) in sim mode. Everything in it is slices, strings and integers —
// no maps (Go map iteration would scramle nothing here because
// encoding/json sorts map keys, but slices keep the report's order the
// runner's order), no floats derived from timing, no wall-clock values.
// GeneratedAt and BodySHA256 live outside Body: two runs of the same
// scenario and seed must produce byte-identical marshalled bodies, and
// the hash is how cmd/faasstress -repeat and the determinism regression
// test check that without diffing whole files.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"
)

// ReportVersion is bumped whenever Body's shape changes, so archived
// reports stay interpretable. Version 2 added the per-sample
// workers_ready gauge and the autoscale block; version 3 added the
// routing block (pull-policy counters and the load-spread CV).
const ReportVersion = 3

// LatencySummary is a latency distribution in integer microseconds.
type LatencySummary struct {
	P50Micros  int64 `json:"p50_micros"`
	P90Micros  int64 `json:"p90_micros"`
	P99Micros  int64 `json:"p99_micros"`
	MaxMicros  int64 `json:"max_micros"`
	MeanMicros int64 `json:"mean_micros"`
}

// summarize computes a LatencySummary from raw microsecond samples,
// consuming (sorting) the slice.
func summarize(micros []int64) LatencySummary {
	if len(micros) == 0 {
		return LatencySummary{}
	}
	sort.Slice(micros, func(i, j int) bool { return micros[i] < micros[j] })
	var sum int64
	for _, v := range micros {
		sum += v
	}
	at := func(q float64) int64 {
		idx := int(q * float64(len(micros)-1))
		return micros[idx]
	}
	return LatencySummary{
		P50Micros:  at(0.50),
		P90Micros:  at(0.90),
		P99Micros:  at(0.99),
		MaxMicros:  micros[len(micros)-1],
		MeanMicros: sum / int64(len(micros)),
	}
}

// PhaseReport is one phase's outcome.
type PhaseReport struct {
	Name      string  `json:"name"`
	Arrival   string  `json:"arrival"`
	Rate      float64 `json:"rate"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	Failed    int64   `json:"failed"`
	Retries   int64   `json:"retries"`
	// Total and Sched summarise the end-to-end and scheduling latency of
	// the invocations *submitted* during the phase (they may complete
	// later; attribution is by submission).
	Total LatencySummary `json:"total_latency"`
	Sched LatencySummary `json:"sched_latency"`
}

// Totals aggregates the whole run.
type Totals struct {
	Submitted int64          `json:"submitted"`
	Completed int64          `json:"completed"`
	Failed    int64          `json:"failed"`
	Retries   int64          `json:"retries"`
	Total     LatencySummary `json:"total_latency"`
}

// SchedStats sums the per-node FaaSBatch scheduler counters.
type SchedStats struct {
	Submitted          int64 `json:"submitted"`
	Groups             int64 `json:"groups"`
	MaxGroupSize       int   `json:"max_group_size"`
	Retries            int64 `json:"retries"`
	Failed             int64 `json:"failed"`
	GroupRedispatches  int64 `json:"group_redispatches"`
	FastPathDispatches int64 `json:"fast_path_dispatches"`
	EarlyCloses        int64 `json:"early_closes"`
	WindowDispatches   int64 `json:"window_dispatches"`
}

// FleetStats sums container-lifecycle counters across the fleet.
type FleetStats struct {
	ContainersCreated int64 `json:"containers_created"`
	ColdStarts        int64 `json:"cold_starts"`
	WarmStarts        int64 `json:"warm_starts"`
	Evictions         int64 `json:"evictions"`
	Crashes           int64 `json:"crashes"`
	BootFailures      int64 `json:"boot_failures"`
	SlowBoots         int64 `json:"slow_boots"`
	PeakMemBytes      int64 `json:"peak_mem_bytes"`
}

// ChaosCount is one fault kind's injection total (sorted by kind name).
type ChaosCount struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// Event is one control-plane occurrence on the run timeline.
type Event struct {
	TimeMillis int64 `json:"time_millis"`
	// Kind is "phase", "chaos", "outage-down", "outage-up", "scale".
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Sample is one metrics snapshot.
type Sample struct {
	TimeMillis     int64 `json:"time_millis"`
	Submitted      int64 `json:"submitted"`
	Completed      int64 `json:"completed"`
	Inflight       int64 `json:"inflight"`
	LiveContainers int64 `json:"live_containers"`
	WorkersDown    int   `json:"workers_down"`
	// WorkersReady counts workers receiving newly routed work — the
	// fleet minus outage-downed and autoscale-retired workers. The
	// sample-over-sample trajectory is the scaling curve.
	WorkersReady int `json:"workers_ready"`
}

// AutoscaleReport summarises the control plane's run (present only when
// the scenario declares an autoscale block). All fields are integers so
// the body stays byte-deterministic.
type AutoscaleReport struct {
	MinWorkers int `json:"min_workers"`
	MaxWorkers int `json:"max_workers"`
	// PeakReady is the highest workers_ready seen in any sample;
	// FinalReady is the count at quiescence (0 after scale-to-zero).
	PeakReady  int   `json:"peak_ready"`
	FinalReady int   `json:"final_ready"`
	ScaleUps   int64 `json:"scale_ups"`
	ScaleDowns int64 `json:"scale_downs"`
	Wakes      int64 `json:"wakes"`
	Drained    int64 `json:"drained"`
	// DrainMillis sums completed graceful-drain durations.
	DrainMillis int64 `json:"drain_millis"`
	// BusyWorkerMillis integrates provisioned worker-time — the elastic
	// fleet's capacity cost, comparable against workers x makespan for a
	// static fleet.
	BusyWorkerMillis int64 `json:"busy_worker_millis"`
}

// RoutingReport summarises the routing-policy run (present only when
// the scenario declares a routing block). All fields are integers so
// the body stays byte-deterministic; LoadCVMilli is the coefficient of
// variation of per-worker routed counts in thousandths.
type RoutingReport struct {
	Policy     string `json:"policy"`
	QueueDepth int    `json:"queue_depth"`
	// Granted, Requeues, Expired and Shed snapshot the pull core's
	// counters (all zero under the hash policy).
	Granted  int64 `json:"granted"`
	Requeues int64 `json:"requeues"`
	Expired  int64 `json:"expired"`
	Shed     int64 `json:"shed"`
	// LoadCVMilli is round(1000 x stddev/mean) over per-worker routed
	// invocation counts — the load-spread figure of merit.
	LoadCVMilli int64 `json:"load_cv_milli"`
}

// Body is the deterministic payload of a report.
type Body struct {
	Version        int               `json:"version"`
	Scenario       string            `json:"scenario"`
	Mode           string            `json:"mode"`
	Seed           int64             `json:"seed"`
	Workers        int               `json:"workers"`
	Zones          int               `json:"zones"`
	Balancing      string            `json:"balancing"`
	Phases         []PhaseReport     `json:"phases"`
	Totals         Totals            `json:"totals"`
	Scheduler      SchedStats        `json:"scheduler"`
	Fleet          FleetStats        `json:"fleet"`
	Autoscale      *AutoscaleReport  `json:"autoscale,omitempty"`
	Routing        *RoutingReport    `json:"routing,omitempty"`
	Chaos          []ChaosCount      `json:"chaos"`
	Events         []Event           `json:"events"`
	Samples        []Sample          `json:"samples"`
	Invariants     []InvariantResult `json:"invariants"`
	MakespanMillis int64             `json:"makespan_millis"`
}

// Report wraps a Body with its provenance. GeneratedAt varies run to
// run; BodySHA256 is the determinism fingerprint.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	BodySHA256  string `json:"body_sha256"`
	Body        Body   `json:"body"`
}

// NewReport stamps a body, computing its hash over the canonical
// marshalling.
func NewReport(body Body, now time.Time) (*Report, error) {
	raw, err := body.Marshal()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	return &Report{
		GeneratedAt: now.UTC().Format(time.RFC3339),
		BodySHA256:  hex.EncodeToString(sum[:]),
		Body:        body,
	}, nil
}

// Marshal produces the canonical (hashed, diffed) serialisation of the
// body.
func (b *Body) Marshal() ([]byte, error) {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal report body: %w", err)
	}
	return append(raw, '\n'), nil
}

// Marshal serialises the full report.
func (r *Report) Marshal() ([]byte, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal report: %w", err)
	}
	return append(raw, '\n'), nil
}

// htmlReport renders the human-facing summary.
var htmlReport = template.Must(template.New("report").Funcs(template.FuncMap{
	"ms": func(micros int64) string { return fmt.Sprintf("%.2f ms", float64(micros)/1000) },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>faasstress: {{.Body.Scenario}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f0f0f0; }
td:first-child, th:first-child { text-align: left; }
.ok { color: #1a7f37; } .fail { color: #cf222e; font-weight: bold; }
</style></head><body>
<h1>{{.Body.Scenario}}</h1>
<p>mode {{.Body.Mode}}, seed {{.Body.Seed}}, {{.Body.Workers}} workers in {{.Body.Zones}} zone(s),
balancing {{.Body.Balancing}}, makespan {{.Body.MakespanMillis}} ms.
Generated {{.GeneratedAt}}; body sha256 <code>{{.BodySHA256}}</code>.</p>

<h2>Invariants</h2>
<table><tr><th>invariant</th><th>verdict</th><th>detail</th></tr>
{{range .Body.Invariants}}<tr><td>{{.Name}}</td>
<td class="{{if .OK}}ok{{else}}fail{{end}}">{{if .OK}}ok{{else}}VIOLATED{{end}}</td>
<td style="text-align:left">{{.Detail}}</td></tr>{{end}}
</table>

<h2>Phases</h2>
<table><tr><th>phase</th><th>arrival</th><th>rate</th><th>submitted</th><th>failed</th>
<th>p50</th><th>p99</th><th>max</th></tr>
{{range .Body.Phases}}<tr><td>{{.Name}}</td><td>{{.Arrival}}</td><td>{{.Rate}}</td>
<td>{{.Submitted}}</td><td>{{.Failed}}</td>
<td>{{ms .Total.P50Micros}}</td><td>{{ms .Total.P99Micros}}</td><td>{{ms .Total.MaxMicros}}</td></tr>{{end}}
</table>

<h2>Totals</h2>
<table><tr><th></th><th>value</th></tr>
<tr><td>submitted</td><td>{{.Body.Totals.Submitted}}</td></tr>
<tr><td>completed</td><td>{{.Body.Totals.Completed}}</td></tr>
<tr><td>failed</td><td>{{.Body.Totals.Failed}}</td></tr>
<tr><td>retries</td><td>{{.Body.Totals.Retries}}</td></tr>
<tr><td>p50 / p99</td><td>{{ms .Body.Totals.Total.P50Micros}} / {{ms .Body.Totals.Total.P99Micros}}</td></tr>
<tr><td>groups</td><td>{{.Body.Scheduler.Groups}}</td></tr>
<tr><td>max group size</td><td>{{.Body.Scheduler.MaxGroupSize}}</td></tr>
<tr><td>containers created</td><td>{{.Body.Fleet.ContainersCreated}}</td></tr>
<tr><td>cold / warm starts</td><td>{{.Body.Fleet.ColdStarts}} / {{.Body.Fleet.WarmStarts}}</td></tr>
<tr><td>crashes / boot failures</td><td>{{.Body.Fleet.Crashes}} / {{.Body.Fleet.BootFailures}}</td></tr>
</table>

{{with .Body.Autoscale}}<h2>Autoscale</h2>
<table><tr><th></th><th>value</th></tr>
<tr><td>workers (min / max)</td><td>{{.MinWorkers}} / {{.MaxWorkers}}</td></tr>
<tr><td>ready (peak / final)</td><td>{{.PeakReady}} / {{.FinalReady}}</td></tr>
<tr><td>scale ups / downs</td><td>{{.ScaleUps}} / {{.ScaleDowns}}</td></tr>
<tr><td>wakes</td><td>{{.Wakes}}</td></tr>
<tr><td>drains completed</td><td>{{.Drained}} ({{.DrainMillis}} ms total)</td></tr>
<tr><td>busy worker-time</td><td>{{.BusyWorkerMillis}} ms</td></tr>
</table>{{end}}

{{with .Body.Routing}}<h2>Routing</h2>
<table><tr><th></th><th>value</th></tr>
<tr><td>policy</td><td>{{.Policy}}</td></tr>
<tr><td>queue depth</td><td>{{.QueueDepth}}</td></tr>
<tr><td>granted / requeues</td><td>{{.Granted}} / {{.Requeues}}</td></tr>
<tr><td>expired / shed</td><td>{{.Expired}} / {{.Shed}}</td></tr>
<tr><td>load spread CV</td><td>{{.LoadCVMilli}} / 1000</td></tr>
</table>{{end}}

{{if .Body.Chaos}}<h2>Chaos</h2>
<table><tr><th>fault kind</th><th>injections</th></tr>
{{range .Body.Chaos}}<tr><td>{{.Kind}}</td><td>{{.Count}}</td></tr>{{end}}
</table>{{end}}

{{if .Body.Events}}<h2>Timeline</h2>
<table><tr><th>t (ms)</th><th>kind</th><th>detail</th></tr>
{{range .Body.Events}}<tr><td>{{.TimeMillis}}</td><td>{{.Kind}}</td>
<td style="text-align:left">{{.Detail}}</td></tr>{{end}}
</table>{{end}}
</body></html>
`))

// WriteHTML renders the report's HTML summary.
func (r *Report) WriteHTML(w io.Writer) error {
	if err := htmlReport.Execute(w, r); err != nil {
		return fmt.Errorf("scenario: render html report: %w", err)
	}
	return nil
}
