// run.go drives a scenario through the discrete-event simulator: it
// generates the fleet from the weighted templates, replays the phase
// timeline (arrival processes, chaos rate swaps, zone outages) against a
// cluster of FaaSBatch schedulers, and aggregates the streaming
// completion records into the versioned report.
//
// Scale notes. A fleet scenario runs millions of invocations, so the
// runner never materialises the workload: each phase's arrival process
// is one self-rescheduling event that draws the next inter-arrival gap
// lazily, keeping the event heap proportional to in-flight work, not to
// trace length; completions stream into per-phase integer-microsecond
// slices (the only O(invocations) memory) rather than metrics.Record
// values. Determinism: every random stream — arrivals, mix choices,
// fib sampling, chaos — derives from the scenario seed via hashmix, and
// the engine's event order is total, so one (scenario, seed) pair yields
// one report body, byte for byte.
package scenario

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/cluster"
	"faasbatch/internal/core"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/hashmix"
	"faasbatch/internal/node"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/sim"
	"faasbatch/internal/slo"
	"faasbatch/internal/workload"
)

// Runner executes scenarios, reusing one simulation engine across runs
// (Engine.Reset + Grow) so repeated executions — cmd/faasstress -repeat,
// the determinism regression — pay the event-heap allocation once.
type Runner struct {
	eng *sim.Engine
	// traceSink, when set, receives a Chrome trace export of a live run
	// (SetTraceSink).
	traceSink io.Writer
}

// NewRunner builds a reusable runner.
func NewRunner() *Runner {
	return &Runner{eng: sim.New(0)}
}

// SetTraceSink directs a Chrome trace-event export of the platform's
// spans to w when a live scenario finishes. Sim runs do not trace (the
// simulator's virtual clock has no per-invocation span instrumentation),
// so RunBody fails fast if a sink is set and the scenario is sim-mode.
func (r *Runner) SetTraceSink(w io.Writer) { r.traceSink = w }

// Run executes a scenario and returns its report.
func (r *Runner) Run(sc *Scenario) (*Report, error) {
	body, err := r.RunBody(sc)
	if err != nil {
		return nil, err
	}
	return NewReport(*body, time.Now())
}

// RunBody executes a scenario and returns the deterministic report body
// (no timestamp), the unit the determinism tests compare.
func (r *Runner) RunBody(sc *Scenario) (*Body, error) {
	if sc == nil {
		return nil, fmt.Errorf("scenario: nil scenario")
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	switch sc.Mode {
	case ModeSim:
		if r.traceSink != nil {
			return nil, fmt.Errorf("scenario: trace export requires mode: live (sim runs carry no span instrumentation)")
		}
		return r.runSim(sc)
	case ModeLive:
		return runLive(sc, r.traceSink)
	default:
		return nil, fmt.Errorf("scenario: unknown mode %v", sc.Mode)
	}
}

// Run executes a scenario with a fresh runner.
func Run(sc *Scenario) (*Report, error) {
	return NewRunner().Run(sc)
}

// subSeed derives a named deterministic seed from the scenario seed.
func subSeed(seed int64, label string) int64 {
	return int64(hashmix.Mix64(uint64(seed) ^ hashmix.String(label)))
}

// buildFleet expands the weighted templates into per-worker node
// configs. Assignment interleaves templates (smooth weighted
// round-robin) so zones — worker i mod zones — get representative
// hardware mixes rather than contiguous runs of one shape.
func buildFleet(sc *Scenario) []node.Config {
	out := make([]node.Config, sc.Fleet.Workers)
	if len(sc.Fleet.Templates) == 0 {
		for i := range out {
			out[i] = node.DefaultConfig()
		}
		return out
	}
	var totalWeight float64
	for _, t := range sc.Fleet.Templates {
		totalWeight += t.Weight
	}
	current := make([]float64, len(sc.Fleet.Templates))
	for i := range out {
		pick := 0
		if totalWeight > 0 {
			for j, t := range sc.Fleet.Templates {
				current[j] += t.Weight
				if current[j] > current[pick] {
					pick = j
				}
			}
			current[pick] -= totalWeight
		} else {
			pick = i % len(sc.Fleet.Templates)
		}
		out[i] = nodeConfig(sc.Fleet.Templates[pick])
	}
	return out
}

// nodeConfig materialises a template over the simulator defaults.
func nodeConfig(t Template) node.Config {
	cfg := node.DefaultConfig()
	if t.Cores > 0 {
		cfg.Cores = t.Cores
	}
	if t.MemBytes > 0 {
		cfg.MemBytes = t.MemBytes
	}
	if t.KeepAlive > 0 {
		cfg.KeepAlive = t.KeepAlive
	}
	if t.ColdStart > 0 {
		cfg.ColdStartLatency = t.ColdStart
	}
	if t.CreateConcurrency > 0 {
		cfg.CreateConcurrency = t.CreateConcurrency
	}
	return cfg
}

// coreConfig maps the dispatch section onto the scheduler config.
func coreConfig(d Dispatch) core.Config {
	cfg := core.DefaultConfig()
	if d.Interval > 0 {
		cfg.Interval = d.Interval
	}
	cfg.AdaptiveDispatch = d.Adaptive
	if d.MinInterval > 0 {
		cfg.MinInterval = d.MinInterval
	}
	cfg.MaxGroupSize = d.MaxGroupSize
	switch {
	case d.MaxRetries < 0:
		cfg.MaxRetries = 0
	case d.MaxRetries > 0:
		cfg.MaxRetries = d.MaxRetries
	}
	return cfg
}

// phaseAgg accumulates one phase's streaming completions.
type phaseAgg struct {
	submitted   int64
	completed   int64
	failed      int64
	retries     int64
	totalMicros []int64
	schedMicros []int64
}

// simRun is the mutable state of one simulated execution.
type simRun struct {
	sc   *Scenario
	eng  *sim.Engine
	cl   *cluster.Cluster
	inj  *chaos.Injector
	slos *slo.Tracker
	// bal is the effective balancing after the routing block's override.
	bal cluster.Balancing

	submitted    int64
	completed    int64
	phases       []*phaseAgg
	events       []Event
	samples      []Sample
	workloadDone bool
}

func (r *Runner) runSim(sc *Scenario) (*Body, error) {
	eng := r.eng
	eng.Reset(sc.Seed)
	eng.Grow(8192)
	inj := chaos.MustNew(chaos.Config{
		Seed:            subSeed(sc.Seed, "chaos"),
		ColdStartFactor: sc.Chaos.ColdStartFactor,
		HangDuration:    sc.Chaos.Hang,
	})
	bal := sc.Dispatch.Balancing
	var pullCfg *pullsched.Config
	if sc.Routing != nil {
		switch sc.Routing.Policy {
		case "pull":
			bal = cluster.Pull
			pullCfg = &pullsched.Config{
				QueueDepth: sc.Routing.QueueDepth,
				BatchSize:  sc.Routing.Batch,
				Capacity:   sc.Routing.Capacity,
			}
		case "hash":
			bal = cluster.ConsistentHash
		}
	}
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:       sc.Fleet.Workers,
		NodeConfigs: buildFleet(sc),
		Core:        coreConfig(sc.Dispatch),
		Balancing:   bal,
		Pull:        pullCfg,
		Chaos:       inj,
		Autoscale:   sc.Autoscale,
	})
	if err != nil {
		return nil, err
	}
	slos, err := newSLOTracker(sc)
	if err != nil {
		return nil, err
	}
	s := &simRun{sc: sc, eng: eng, cl: cl, inj: inj, slos: slos, bal: bal}
	for range sc.Phases {
		s.phases = append(s.phases, &phaseAgg{})
	}

	lastControl := s.scheduleTimeline()
	s.startSampler()

	end := sc.TotalDuration()
	if lastControl > end {
		end = lastControl
	}
	deadline := end + sc.MaxDrain
	for {
		if s.workloadDone && s.completed == s.submitted && eng.Now().Duration() > end {
			break
		}
		if !eng.Step() {
			break
		}
		if eng.Now().Duration() > deadline {
			return nil, fmt.Errorf("scenario: run did not quiesce within %v after the workload (%d/%d complete)",
				sc.MaxDrain, s.completed, s.submitted)
		}
	}
	if err := cl.Close(); err != nil {
		return nil, err
	}
	return s.report(), nil
}

// scheduleTimeline installs the phase starts (arrivals + chaos swaps),
// the outage events and the end-of-workload marker, returning the latest
// control-event time.
func (s *simRun) scheduleTimeline() time.Duration {
	var offset, lastControl time.Duration
	for pi, p := range s.sc.Phases {
		pi, p := pi, p
		start := offset
		s.eng.Schedule(start, func() {
			s.event("phase", fmt.Sprintf("phase %q starts (arrival %s, rate %g/s)", p.Name, p.Arrival, p.Rate))
			rates := p.Chaos // nil zeroes every kind: phases without chaos run clean
			if err := s.inj.SetRates(rates); err == nil && len(rates) > 0 {
				s.event("chaos", fmt.Sprintf("fault rates set for phase %q", p.Name))
			}
		})
		if p.Rate > 0 {
			s.startArrivals(pi, p, start, start+p.Duration)
		}
		for _, o := range p.Outages {
			t := s.scheduleOutage(o, start)
			if t > lastControl {
				lastControl = t
			}
		}
		offset += p.Duration
	}
	s.eng.Schedule(offset, func() { s.workloadDone = true })
	if offset > lastControl {
		lastControl = offset
	}
	return lastControl
}

// scheduleOutage installs one zone failure: the zone's workers go down
// (staggered across Cascade when set), drain their in-flight work, and
// come back Duration later. Returns the recovery completion time.
func (s *simRun) scheduleOutage(o Outage, phaseStart time.Duration) time.Duration {
	var members []int
	for i := 0; i < s.sc.Fleet.Workers; i++ {
		if i%s.sc.Fleet.Zones == o.Zone {
			members = append(members, i)
		}
	}
	var step time.Duration
	if o.Cascade > 0 && len(members) > 1 {
		step = o.Cascade / time.Duration(len(members)-1)
	}
	var last time.Duration
	for j, idx := range members {
		idx := idx
		downAt := phaseStart + o.At + step*time.Duration(j)
		upAt := downAt + o.Duration
		s.eng.Schedule(downAt, func() {
			_ = s.cl.SetDown(idx, true)
			s.event("outage-down", fmt.Sprintf("zone %d: worker %d down", o.Zone, idx))
		})
		s.eng.Schedule(upAt, func() {
			_ = s.cl.SetDown(idx, false)
			s.event("outage-up", fmt.Sprintf("zone %d: worker %d recovered", o.Zone, idx))
		})
		if upAt > last {
			last = upAt
		}
	}
	return last
}

// event appends a timeline entry stamped with the current virtual time.
func (s *simRun) event(kind, detail string) {
	s.events = append(s.events, Event{
		TimeMillis: s.eng.Now().Duration().Milliseconds(),
		Kind:       kind,
		Detail:     detail,
	})
}

// mixEntry is a phase's pre-resolved function mix: cached specs and
// instance names so the per-arrival work is one rng draw and one map-free
// lookup.
type mixEntry struct {
	cum   float64 // cumulative weight
	io    bool
	fibN  int
	specs []workload.Spec // io entries: per-instance cached specs
	names []string        // fib entries: per-instance function names
}

// buildMix resolves a phase's mix into sampling tables.
func buildMix(p Phase) ([]mixEntry, float64, error) {
	var cum float64
	out := make([]mixEntry, 0, len(p.Mix))
	for _, e := range p.Mix {
		cum += e.Weight
		me := mixEntry{cum: cum, io: e.IO, fibN: e.FibN}
		for i := 0; i < e.Instances; i++ {
			name := e.Fn
			if e.Instances > 1 {
				name = fmt.Sprintf("%s-%d", e.Fn, i)
			}
			if e.IO {
				me.specs = append(me.specs, workload.IOSpec(name))
			} else {
				me.names = append(me.names, name)
			}
		}
		out = append(out, me)
	}
	return out, cum, nil
}

// startArrivals installs a phase's lazy arrival process. Each firing
// submits (unless thinned out by the ramp) and schedules its successor,
// so the heap holds one pending arrival event per phase at any instant.
func (s *simRun) startArrivals(pi int, p Phase, start, end time.Duration) {
	rng := rand.New(rand.NewSource(subSeed(s.sc.Seed, fmt.Sprintf("arrivals-%d", pi))))
	gen := workload.NewGenerator(subSeed(s.sc.Seed, fmt.Sprintf("fib-%d", pi)))
	mix, totalWeight, _ := buildMix(p)
	fibCache := map[int]workload.Spec{}

	submit := func() {
		u := rng.Float64() * totalWeight
		var me *mixEntry
		for i := range mix {
			if u < mix[i].cum {
				me = &mix[i]
				break
			}
		}
		if me == nil {
			me = &mix[len(mix)-1]
		}
		var spec workload.Spec
		if me.io {
			spec = me.specs[rng.Intn(len(me.specs))]
		} else {
			n := me.fibN
			if n == 0 {
				n = gen.SampleFibN()
			}
			base, ok := fibCache[n]
			if !ok {
				var err error
				base, err = workload.FibSpec(n)
				if err != nil {
					return // validated N ranges make this unreachable
				}
				fibCache[n] = base
			}
			spec = base
			spec.Name = me.names[rng.Intn(len(me.names))]
		}
		s.submitOne(pi, spec)
	}
	// accept applies the linear ramp by thinning.
	accept := func() bool {
		if p.Ramp <= 0 {
			return true
		}
		into := s.eng.Now().Duration() - start
		if into >= p.Ramp {
			return true
		}
		return rng.Float64() < float64(into)/float64(p.Ramp)
	}
	// gap draws the next inter-arrival time for the process head.
	meanGap := time.Duration(float64(time.Second) / p.Rate)
	gap := func() time.Duration {
		switch p.Arrival {
		case "constant":
			return meanGap
		case "bursty":
			// Heads arrive rate/size times per second; the burst body is
			// scheduled separately.
			return expDuration(rng, p.Rate/float64(p.BurstSize))
		default: // poisson
			return expDuration(rng, p.Rate)
		}
	}
	var tick func()
	tick = func() {
		now := s.eng.Now().Duration()
		if now >= end {
			return
		}
		if p.Arrival == "bursty" {
			if accept() {
				size := 1 + rng.Intn(2*p.BurstSize-1) // mean ~= BurstSize
				var at time.Duration
				for i := 0; i < size; i++ {
					if i > 0 {
						at += expDuration(rng, float64(time.Second)/float64(p.BurstIaT))
					}
					if now+at >= end {
						break
					}
					s.eng.Schedule(at, submit)
				}
			}
		} else if accept() {
			submit()
		}
		s.eng.Schedule(gap(), tick)
	}
	s.eng.Schedule(start, tick)
}

// expDuration draws an exponential inter-arrival gap for the given rate
// (events per second), capped at an hour so a tiny rate cannot fling an
// event past any drain bound.
func expDuration(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Hour
	}
	d := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	if d > time.Hour {
		return time.Hour
	}
	return d
}

// submitOne routes one invocation into the cluster and streams its
// completion into the phase aggregate.
func (s *simRun) submitOne(pi int, spec workload.Spec) {
	agg := s.phases[pi]
	id := s.submitted
	s.submitted++
	agg.submitted++
	inv := fnruntime.NewInvocation(id, spec, s.eng.Now())
	s.cl.Submit(inv, func(done *fnruntime.Invocation) {
		s.completed++
		agg.completed++
		rec := done.Rec
		s.slos.Observe(done.Spec.Name, rec.Total(), rec.Failed, s.eng.Now().Duration())
		if rec.Failed {
			agg.failed++
		}
		agg.retries += int64(rec.Retries)
		agg.totalMicros = append(agg.totalMicros, rec.Total().Microseconds())
		agg.schedMicros = append(agg.schedMicros, rec.Sched.Microseconds())
	})
}

// startSampler installs the self-rescheduling metrics sampler; it keeps
// firing through the drain so the tail is visible in the report.
func (s *simRun) startSampler() {
	interval := s.sc.Sampling
	var tick func()
	tick = func() {
		live := 0
		for _, nd := range s.cl.Nodes() {
			live += nd.LiveContainers()
		}
		down := 0
		for i := 0; i < s.sc.Fleet.Workers; i++ {
			if s.cl.Down(i) {
				down++
			}
		}
		s.samples = append(s.samples, Sample{
			TimeMillis:     s.eng.Now().Duration().Milliseconds(),
			Submitted:      s.submitted,
			Completed:      s.completed,
			Inflight:       s.submitted - s.completed,
			LiveContainers: int64(live),
			WorkersDown:    down,
			WorkersReady:   s.cl.ReadyNodes(),
		})
		s.eng.Schedule(interval, tick)
	}
	s.eng.Schedule(interval, tick)
}

// mergeScaleEvents interleaves the autoscaler's decision log into the
// control-event timeline by timestamp (stable: control events first at
// equal instants), keeping the report's event order chronological.
func mergeScaleEvents(events []Event, cl *cluster.Cluster) []Event {
	ds := cl.AutoscaleDecisions()
	if len(ds) == 0 {
		return events
	}
	scale := make([]Event, len(ds))
	for i, d := range ds {
		scale[i] = Event{TimeMillis: d.At.Milliseconds(), Kind: "scale", Detail: d.String()}
	}
	out := make([]Event, 0, len(events)+len(scale))
	i, j := 0, 0
	for i < len(events) && j < len(scale) {
		if events[i].TimeMillis <= scale[j].TimeMillis {
			out = append(out, events[i])
			i++
		} else {
			out = append(out, scale[j])
			j++
		}
	}
	out = append(out, events[i:]...)
	return append(out, scale[j:]...)
}

// autoscaleReport assembles the control plane's report block (nil when
// the scenario ran a static fleet).
func (s *simRun) autoscaleReport() *AutoscaleReport {
	if !s.cl.AutoscaleEnabled() {
		return nil
	}
	st := s.cl.AutoscaleStatus()
	cfg := *s.sc.Autoscale
	maxW := cfg.MaxWorkers
	if maxW <= 0 || maxW > s.sc.Fleet.Workers {
		maxW = s.sc.Fleet.Workers
	}
	peak := 0
	for _, smp := range s.samples {
		if smp.WorkersReady > peak {
			peak = smp.WorkersReady
		}
	}
	return &AutoscaleReport{
		MinWorkers:       cfg.MinWorkers,
		MaxWorkers:       maxW,
		PeakReady:        peak,
		FinalReady:       s.cl.ReadyNodes(),
		ScaleUps:         int64(st.ScaleUps),
		ScaleDowns:       int64(st.ScaleDowns),
		Wakes:            int64(st.Wakes),
		Drained:          int64(st.Drained),
		DrainMillis:      st.DrainTime.Milliseconds(),
		BusyWorkerMillis: s.cl.AutoscaleBusyIntegral().Milliseconds(),
	}
}

// routingReport assembles the routing-policy report block (nil when the
// scenario declared no routing section).
func (s *simRun) routingReport() *RoutingReport {
	if s.sc.Routing == nil {
		return nil
	}
	rep := &RoutingReport{
		Policy:      s.sc.Routing.Policy,
		QueueDepth:  s.sc.Routing.QueueDepth,
		LoadCVMilli: int64(math.Round(loadCV(s.cl.RoutedPerNode()) * 1000)),
	}
	if s.cl.PullEnabled() {
		st := s.cl.PullStats()
		rep.Granted = int64(st.Granted)
		rep.Requeues = int64(st.Requeues)
		rep.Expired = int64(st.Expired)
		rep.Shed = int64(st.Shed)
	}
	return rep
}

// report assembles the deterministic body from the run's aggregates.
func (s *simRun) report() *Body {
	b := &Body{
		Version:   ReportVersion,
		Scenario:  s.sc.Name,
		Mode:      s.sc.Mode.String(),
		Seed:      s.sc.Seed,
		Workers:   s.sc.Fleet.Workers,
		Zones:     s.sc.Fleet.Zones,
		Balancing: s.bal.String(),
		Events:    mergeScaleEvents(s.events, s.cl),
		Samples:   s.samples,
		Autoscale: s.autoscaleReport(),
		Routing:   s.routingReport(),
	}
	var allTotal []int64
	var failed, retries int64
	for pi, p := range s.sc.Phases {
		agg := s.phases[pi]
		allTotal = append(allTotal, agg.totalMicros...)
		failed += agg.failed
		retries += agg.retries
		b.Phases = append(b.Phases, PhaseReport{
			Name:      p.Name,
			Arrival:   p.Arrival,
			Rate:      p.Rate,
			Submitted: agg.submitted,
			Completed: agg.completed,
			Failed:    agg.failed,
			Retries:   agg.retries,
			Total:     summarize(agg.totalMicros),
			Sched:     summarize(agg.schedMicros),
		})
	}
	b.Totals = Totals{
		Submitted: s.submitted,
		Completed: s.completed,
		Failed:    failed,
		Retries:   retries,
		Total:     summarize(allTotal),
	}
	var schedSubmitted int64
	for _, sched := range s.cl.Schedulers() {
		st := sched.Stats()
		b.Scheduler.Submitted += st.Submitted
		b.Scheduler.Groups += st.Groups
		if st.MaxGroupSize > b.Scheduler.MaxGroupSize {
			b.Scheduler.MaxGroupSize = st.MaxGroupSize
		}
		b.Scheduler.Retries += st.Retries
		b.Scheduler.Failed += st.Failed
		b.Scheduler.GroupRedispatches += st.GroupRedispatches
		b.Scheduler.FastPathDispatches += st.FastPathDispatches
		b.Scheduler.EarlyCloses += st.EarlyCloses
		b.Scheduler.WindowDispatches += st.WindowDispatches
	}
	schedSubmitted = b.Scheduler.Submitted
	for _, nd := range s.cl.Nodes() {
		b.Fleet.ContainersCreated += int64(nd.TotalCreated())
		b.Fleet.ColdStarts += int64(nd.ColdStarts())
		b.Fleet.WarmStarts += int64(nd.WarmStarts())
		b.Fleet.Evictions += int64(nd.Evictions())
		b.Fleet.Crashes += int64(nd.Crashes())
		b.Fleet.BootFailures += int64(nd.BootFailures())
		b.Fleet.SlowBoots += int64(nd.SlowBoots())
		b.Fleet.PeakMemBytes += nd.MemPeak()
	}
	b.Chaos = chaosCounts(s.inj)
	down := 0
	for i := 0; i < s.sc.Fleet.Workers; i++ {
		if s.cl.Down(i) {
			down++
		}
	}
	peakReady := 0
	for _, smp := range s.samples {
		if smp.WorkersReady > peakReady {
			peakReady = smp.WorkersReady
		}
	}
	// Under the pull policy, depth-bound sheds complete at the router
	// without ever reaching a node scheduler, so they join the LHS of
	// the accounting identity.
	consLHS := schedSubmitted
	consExpr := "sum(scheduler submitted) == harness submitted"
	if s.cl.PullEnabled() {
		consLHS += int64(s.cl.PullShed())
		consExpr = "sum(scheduler submitted) + pull shed == harness submitted"
	}
	b.Invariants = evalInvariants(s.sc.Invariants, invariantInputs{
		submitted:        s.submitted,
		completed:        s.completed,
		failed:           failed,
		conservationLHS:  consLHS,
		conservationRHS:  s.submitted,
		conservationExpr: consExpr,
		downAtEnd:        down,
		routedPerNode:    s.cl.RoutedPerNode(),
		autoscaleOn:      s.cl.AutoscaleEnabled(),
		peakReady:        peakReady,
		readyAtEnd:       s.cl.ReadyNodes(),
		slo:              sloVerdicts(s.sc, s.slos, s.eng.Now().Duration()),
	})
	b.MakespanMillis = s.eng.Now().Duration().Milliseconds()
	return b
}

// chaosCounts snapshots the injector totals as a kind-ordered slice.
func chaosCounts(inj *chaos.Injector) []ChaosCount {
	counts := inj.Counts()
	var out []ChaosCount
	for _, k := range chaos.Kinds() {
		if counts[k] > 0 {
			out = append(out, ChaosCount{Kind: k.String(), Count: int64(counts[k])})
		}
	}
	return out
}
