package scenario

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// sloScenario wraps one slo invariant line in a minimal valid scenario.
func sloScenario(inv string) string {
	return `
scenario: slo-decode
seed: 1
phases:
  - name: only
    duration: 1s
    rate: 1
    mix:
      - fn: fib
invariants:
  - ` + inv + "\n"
}

func TestSLOInvariantDecode(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want SLOSpec
	}{
		{
			name: "flow latency objective",
			src:  sloScenario(`slo: {function: f1, p99_ms: 250, max_burn: 2.5}`),
			want: SLOSpec{Function: "f1", Quantile: 0.99, Target: 250 * time.Millisecond, MaxBurn: 2.5},
		},
		{
			name: "availability objective with default burn",
			src:  sloScenario(`slo: {function: f2, availability: 0.999}`),
			want: SLOSpec{Function: "f2", Quantile: 0.999, MaxBurn: 2},
		},
		{
			name: "block form",
			src: sloScenario(`slo:
      function: f3
      p50_ms: 10`),
			want: SLOSpec{Function: "f3", Quantile: 0.5, Target: 10 * time.Millisecond, MaxBurn: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := Parse([]byte(tc.src))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if len(sc.Invariants) != 1 || sc.Invariants[0].SLO == nil {
				t.Fatalf("invariants = %+v, want one slo invariant", sc.Invariants)
			}
			if got := *sc.Invariants[0].SLO; got != tc.want {
				t.Fatalf("SLOSpec = %+v, want %+v", got, tc.want)
			}
			objs := sc.SLOObjectives()
			if len(objs) != 1 || objs[0].Function != tc.want.Function {
				t.Fatalf("SLOObjectives = %+v", objs)
			}
		})
	}
}

func TestSLOInvariantDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"missing function", sloScenario(`slo: {p99_ms: 250}`), "function"},
		{"no objective key", sloScenario(`slo: {function: f1}`), "exactly one objective"},
		{"two objective keys", sloScenario(`slo: {function: f1, p50_ms: 10, p99_ms: 250}`), "exactly one objective"},
		{"non-positive bound", sloScenario(`slo: {function: f1, p99_ms: -5}`), "positive"},
		{"unknown key", sloScenario(`slo: {function: f1, p99_ms: 250, burn: 2}`), "unknown"},
		{"scalar parameter", sloScenario(`slo: 0.99`), "mapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// TestSLOBurnScenario is the acceptance check on the shipped scenario
// file: with chaos the slow-cold-start storm must trip the slo invariant
// (faasstress exits 2), with chaos stripped the same scenario must pass,
// and the chaotic run must be byte-deterministic.
func TestSLOBurnScenario(t *testing.T) {
	src, err := os.ReadFile("../../scenarios/slo-burn.yaml")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner()

	parse := func() *Scenario {
		sc, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		return sc
	}
	run := func(sc *Scenario) *Body {
		body, err := runner.RunBody(sc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return body
	}

	chaotic := run(parse())
	sloViolated := false
	for _, v := range chaotic.Violations() {
		if v.Name == "slo" {
			sloViolated = true
		} else {
			t.Errorf("unexpected violation %s: %s", v.Name, v.Detail)
		}
	}
	if !sloViolated {
		t.Fatalf("slo invariant held under chaos; invariants: %+v", chaotic.Invariants)
	}

	raw1, err := chaotic.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := run(parse()).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("chaotic slo-burn run is not deterministic")
	}

	baseline := parse()
	baseline.DisableChaos()
	for _, v := range run(baseline).Violations() {
		t.Errorf("baseline violation %s: %s", v.Name, v.Detail)
	}
}

// TestLiveSLOObservation proves the live runner feeds completions into
// the burn-rate tracker: a generous objective holds while an
// availability objective under a heavy handler-error storm breaches.
// The storm phase runs first so its stragglers drain into the clean
// phase's zeroed rate table, never the other way around — the quiet
// function must see no injected faults.
func TestLiveSLOObservation(t *testing.T) {
	src := `
scenario: live-slo
mode: live
seed: 5
live-time-scale: 10
dispatch:
  interval: 10ms
sampling: 100ms
phases:
  - name: storm
    duration: 2s
    arrival: poisson
    rate: 100
    mix:
      - fn: ping
        instances: 2
    chaos:
      handler-error: 0.95
  - name: clean
    duration: 2s
    arrival: poisson
    rate: 100
    mix:
      - fn: quiet
        instances: 2
invariants:
  - slo: {function: quiet-0, p99_ms: 60000, max_burn: 2}
  - slo: {function: ping-0, availability: 0.99, max_burn: 2}
`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body, err := NewRunner().RunBody(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Distinguish the two objectives by their targets: the latency
	// objective carries a 1m target, the availability objective a zero
	// target.
	var latencyOK, availabilityBreached bool
	for _, inv := range body.Invariants {
		if inv.Name != "slo" {
			continue
		}
		switch {
		case strings.Contains(inv.Detail, "target 1m"):
			latencyOK = inv.OK
		case strings.Contains(inv.Detail, "target 0s"):
			availabilityBreached = !inv.OK
		}
	}
	if !latencyOK {
		t.Errorf("generous latency objective did not hold: %+v", body.Invariants)
	}
	if !availabilityBreached {
		t.Errorf("availability objective survived a 95%% handler-error storm: %+v", body.Invariants)
	}
}
