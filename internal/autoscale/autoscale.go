// Package autoscale is the predictive autoscaling control plane for
// the routing tier: it tracks per-function demand (EWMA + arrival/
// latency histograms feeding a short-horizon forecaster), computes a
// target worker count per evaluation tick with hysteresis (burst
// scale-up, cooldown scale-down, pre-warm floor), and drives worker
// slots through explicit lifecycle transitions:
//
//	retired → (provision) → warming → ready → (drain) → draining → retired
//
// with scale-to-zero when the whole system goes idle.
//
// The controller is clock-agnostic in the internal/dispatch style: it
// never reads wall time, only the monotonic offsets callers pass in, so
// the exact same code drives both the simulated cluster (virtual clock)
// and the live router (wall clock), and a sim-vs-live conformance test
// can replay one traffic schedule through both and assert identical
// decision sequences. To keep that guarantee, decisions depend only on
// the configuration, the observed arrival schedule, and the tick
// schedule — never on observed latencies or on when a driver actually
// finishes draining a worker (drain completion is modelled by the
// DrainBudget clock; NoteDrained feeds metrics only).
//
// The controller is not safe for concurrent use: the simulator is
// single-threaded and the live router serialises calls behind a mutex.
package autoscale

import (
	"fmt"
	"math"
	"time"
)

// WorkerState is a lifecycle slot state.
type WorkerState uint8

const (
	// StateRetired marks a slot with no provisioned worker (never
	// provisioned, or drained and released).
	StateRetired WorkerState = iota
	// StateWarming marks a provisioned worker pre-warming ahead of
	// predicted load; it joins the ring once Warmup elapses.
	StateWarming
	// StateReady marks a worker serving traffic.
	StateReady
	// StateDraining marks a worker removed from the ring that is
	// finishing in-flight work before retiring.
	StateDraining
)

// String names the state for logs, traces, and reports.
func (s WorkerState) String() string {
	switch s {
	case StateWarming:
		return "warming"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	default:
		return "retired"
	}
}

// Action is a lifecycle transition the controller asks a driver to
// apply to one worker slot.
type Action uint8

const (
	// ActionProvision starts a worker in slot Worker (retired → warming).
	ActionProvision Action = iota + 1
	// ActionReady promotes a warmed worker into the ring (warming → ready).
	ActionReady
	// ActionDrain removes a worker from the ring to finish in-flight
	// work (ready → draining).
	ActionDrain
	// ActionReclaim cancels an in-progress drain because demand came
	// back — the still-warm worker rejoins the ring (draining → ready).
	ActionReclaim
	// ActionRetire releases a worker slot: a drained worker after its
	// DrainBudget elapses, or a warming worker that was never needed
	// (draining|warming → retired).
	ActionRetire
)

// String names the action for logs, traces, and decision fingerprints.
func (a Action) String() string {
	switch a {
	case ActionProvision:
		return "provision"
	case ActionReady:
		return "ready"
	case ActionDrain:
		return "drain"
	case ActionReclaim:
		return "reclaim"
	case ActionRetire:
		return "retire"
	default:
		return "unknown"
	}
}

// Decision is one scaling decision: apply Action to worker slot Worker.
// Target and Forecast record the controller's view at decision time so
// drivers can log/trace without re-deriving it.
type Decision struct {
	At       time.Duration
	Action   Action
	Worker   int
	Target   int
	Forecast float64
}

// String renders a compact fingerprint ("1500ms provision w2 target=3")
// used by the determinism corpus and the conformance test.
func (d Decision) String() string {
	return fmt.Sprintf("%dms %s w%d target=%d", d.At.Milliseconds(), d.Action, d.Worker, d.Target)
}

// Config tunes the control loop. The zero value is not valid; call
// (Config).WithDefaults and Validate (New does both).
type Config struct {
	// MinWorkers is the ready-count floor. 0 enables scale-to-zero.
	MinWorkers int
	// MaxWorkers bounds the fleet (slot count). Required >= 1.
	MaxWorkers int
	// TargetPerWorker is the demand (invocations/second) one ready
	// worker is provisioned to absorb. Required > 0.
	TargetPerWorker float64
	// Headroom is the fractional spare capacity kept above the
	// forecast (0.2 = 20%). Default 0.2.
	Headroom float64
	// EvalInterval is the control-loop tick period. Default 500ms.
	EvalInterval time.Duration
	// Warmup is the provision → ready pre-warm delay (container image
	// pull, runtime boot). Default 0 (ready in the same tick).
	Warmup time.Duration
	// DrainBudget is the modelled draining → retired duration. The
	// decision clock uses this budget — not the driver-reported drain
	// completion — so sim and live decisions stay identical.
	// Default 2×EvalInterval.
	DrainBudget time.Duration
	// ScaleDownAfter is the scale-down cooldown: consecutive
	// over-provisioned ticks required before draining. Default 3.
	ScaleDownAfter int
	// ScaleToZeroAfter is how long the whole system must be idle
	// before the fleet drops below one worker (only with
	// MinWorkers == 0). Default 10×EvalInterval.
	ScaleToZeroAfter time.Duration
	// PrewarmQuantile picks the per-tick rate quantile that sets the
	// pre-warm floor: enough workers stay warm to absorb the recent
	// burst level even while the instantaneous rate dips. Default 0.9.
	PrewarmQuantile float64
	// Alpha is the demand EWMA smoothing factor. Default 0.3.
	Alpha float64
}

// WithDefaults fills unset tuning fields.
func (c Config) WithDefaults() Config {
	if c.Headroom <= 0 {
		c.Headroom = 0.2
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 500 * time.Millisecond
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 2 * c.EvalInterval
	}
	if c.ScaleDownAfter <= 0 {
		c.ScaleDownAfter = 3
	}
	if c.ScaleToZeroAfter <= 0 {
		c.ScaleToZeroAfter = 10 * c.EvalInterval
	}
	if c.PrewarmQuantile <= 0 || c.PrewarmQuantile > 1 {
		c.PrewarmQuantile = 0.9
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.MaxWorkers < 1 {
		return fmt.Errorf("autoscale: max workers must be >= 1, got %d", c.MaxWorkers)
	}
	if c.MinWorkers < 0 || c.MinWorkers > c.MaxWorkers {
		return fmt.Errorf("autoscale: min workers must be in [0, %d], got %d", c.MaxWorkers, c.MinWorkers)
	}
	if c.TargetPerWorker <= 0 {
		return fmt.Errorf("autoscale: target per-worker rate must be > 0, got %v", c.TargetPerWorker)
	}
	return nil
}

// slot is one worker slot's lifecycle state.
type slot struct {
	state      WorkerState
	readyAt    time.Duration // warming → ready transition time
	retireAt   time.Duration // draining → retired transition time
	drainStart time.Duration
}

// Status is a point-in-time snapshot for gauges and reports.
type Status struct {
	Target   int
	Ready    int
	Warming  int
	Draining int
	Retired  int
	Forecast float64
	Floor    int // pre-warm floor in workers

	ScaleUps   uint64 // provision + reclaim decisions
	ScaleDowns uint64 // drain decisions
	Wakes      uint64 // scale-from-zero wake-ups
	Drained    uint64 // driver-reported completed drains
	DrainTime  time.Duration
}

// Controller is the shared autoscaling state machine.
type Controller struct {
	cfg    Config
	demand *Demand
	slots  []slot

	target   int
	floor    int
	forecast float64
	lowTicks int

	scaleUps   uint64
	scaleDowns uint64
	wakes      uint64
	drained    uint64
	drainTime  time.Duration

	// ready-worker integral: cost accounting for the static-vs-elastic
	// benchmark (worker-time provisioned, warming+ready+draining).
	busyIntegral time.Duration
	lastAccount  time.Duration
}

// New builds a controller with initial workers already Ready (the
// fleet's starting size, clamped to [0, MaxWorkers]).
func New(cfg Config, initial int) (*Controller, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if initial < 0 {
		initial = 0
	}
	if initial > cfg.MaxWorkers {
		initial = cfg.MaxWorkers
	}
	c := &Controller{
		cfg:    cfg,
		demand: NewDemand(cfg.Alpha),
		slots:  make([]slot, cfg.MaxWorkers),
		target: initial,
	}
	for i := 0; i < initial; i++ {
		c.slots[i].state = StateReady
	}
	return c, nil
}

// Config reports the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Demand exposes the tracker (histogram export for metrics).
func (c *Controller) Demand() *Demand { return c.demand }

// Observe records one arrival at offset now. Drivers call this on
// every admitted invocation, then Wake to catch the scaled-to-zero case.
func (c *Controller) Observe(fn string, now time.Duration) {
	c.demand.Observe(fn, now)
}

// ObserveLatency records a completion latency (observability only).
func (c *Controller) ObserveLatency(lat time.Duration) {
	c.demand.ObserveLatency(lat)
}

// NoteDrained records that the driver finished draining slot w at
// offset now. Metrics only — the decision clock uses DrainBudget.
func (c *Controller) NoteDrained(w int, started, now time.Duration) {
	c.drained++
	if now > started {
		c.drainTime += now - started
	}
}

func (c *Controller) count(s WorkerState) int {
	n := 0
	for i := range c.slots {
		if c.slots[i].state == s {
			n++
		}
	}
	return n
}

// account folds elapsed provisioned-worker time into the cost
// integral, using the busy count that held before any transition at now.
func (c *Controller) account(now time.Duration) {
	if now <= c.lastAccount {
		return
	}
	busy := len(c.slots) - c.count(StateRetired)
	c.busyIntegral += time.Duration(busy) * (now - c.lastAccount)
	c.lastAccount = now
}

// BusyIntegral reports the accumulated provisioned worker-time
// (warming+ready+draining), the elastic fleet's cost figure.
func (c *Controller) BusyIntegral() time.Duration { return c.busyIntegral }

// advance applies time-based lifecycle transitions due at now, in slot
// order (canonical decision order for conformance).
func (c *Controller) advance(now time.Duration, out []Decision) []Decision {
	for i := range c.slots {
		sl := &c.slots[i]
		switch sl.state {
		case StateWarming:
			if sl.readyAt <= now {
				c.account(now)
				sl.state = StateReady
				out = append(out, Decision{At: now, Action: ActionReady, Worker: i, Target: c.target, Forecast: c.forecast})
			}
		case StateDraining:
			if sl.retireAt <= now {
				c.account(now)
				sl.state = StateRetired
				out = append(out, Decision{At: now, Action: ActionRetire, Worker: i, Target: c.target, Forecast: c.forecast})
			}
		}
	}
	return out
}

// provision starts up to n workers (reclaim draining slots first —
// they are still warm — then provision retired slots), returning the
// decisions emitted.
func (c *Controller) provision(now time.Duration, n int, out []Decision) []Decision {
	for i := range c.slots {
		if n == 0 {
			return out
		}
		if c.slots[i].state == StateDraining {
			c.account(now)
			c.slots[i].state = StateReady
			c.scaleUps++
			out = append(out, Decision{At: now, Action: ActionReclaim, Worker: i, Target: c.target, Forecast: c.forecast})
			n--
		}
	}
	for i := range c.slots {
		if n == 0 {
			return out
		}
		if c.slots[i].state == StateRetired {
			c.account(now)
			c.scaleUps++
			if c.cfg.Warmup <= 0 {
				c.slots[i].state = StateReady
				out = append(out, Decision{At: now, Action: ActionProvision, Worker: i, Target: c.target, Forecast: c.forecast})
				out = append(out, Decision{At: now, Action: ActionReady, Worker: i, Target: c.target, Forecast: c.forecast})
			} else {
				c.slots[i].state = StateWarming
				c.slots[i].readyAt = now + c.cfg.Warmup
				out = append(out, Decision{At: now, Action: ActionProvision, Worker: i, Target: c.target, Forecast: c.forecast})
			}
			n--
		}
	}
	return out
}

// retire drains up to n workers: warming slots retire outright (they
// never took traffic), then ready slots drain, highest index first so
// the longest-lived workers survive.
func (c *Controller) retire(now time.Duration, n int, out []Decision) []Decision {
	for i := len(c.slots) - 1; i >= 0 && n > 0; i-- {
		if c.slots[i].state == StateWarming {
			c.account(now)
			c.slots[i].state = StateRetired
			c.scaleDowns++
			out = append(out, Decision{At: now, Action: ActionRetire, Worker: i, Target: c.target, Forecast: c.forecast})
			n--
		}
	}
	for i := len(c.slots) - 1; i >= 0 && n > 0; i-- {
		if c.slots[i].state == StateReady {
			c.account(now)
			sl := &c.slots[i]
			sl.state = StateDraining
			sl.drainStart = now
			sl.retireAt = now + c.cfg.DrainBudget
			c.scaleDowns++
			out = append(out, Decision{At: now, Action: ActionDrain, Worker: i, Target: c.target, Forecast: c.forecast})
			n--
		}
	}
	return out
}

// Tick runs one control-loop evaluation at offset now and returns the
// decisions for the driver to apply, in canonical order.
func (c *Controller) Tick(now time.Duration) []Decision {
	var out []Decision
	out = c.advance(now, out)
	c.account(now)

	c.demand.Advance(now)
	c.forecast = c.demand.Forecast()

	// Pre-warm floor: hold enough warm workers for the recent burst
	// level (high quantile of per-tick rates), so recurring bursts
	// never pay cold starts.
	c.floor = int(math.Ceil(c.demand.PeakRate(c.cfg.PrewarmQuantile) / c.cfg.TargetPerWorker))

	desired := int(math.Ceil(c.forecast * (1 + c.cfg.Headroom) / c.cfg.TargetPerWorker))
	if desired < c.floor {
		desired = c.floor
	}
	if desired < 1 {
		desired = 1
	}
	if c.cfg.MinWorkers == 0 && c.demand.IdleFor(now) >= c.cfg.ScaleToZeroAfter {
		desired = 0
	}
	if desired < c.cfg.MinWorkers {
		desired = c.cfg.MinWorkers
	}
	if desired > c.cfg.MaxWorkers {
		desired = c.cfg.MaxWorkers
	}
	c.target = desired

	capacity := c.count(StateReady) + c.count(StateWarming)
	switch {
	case desired > capacity:
		// Scale up immediately: the forecast's max(ewma, last-rate)
		// makes a one-tick burst provision several workers at once.
		c.lowTicks = 0
		out = c.provision(now, desired-capacity, out)
	case desired < capacity:
		// Scale down only after the cooldown: demand dips must persist
		// ScaleDownAfter consecutive ticks before workers drain.
		c.lowTicks++
		if c.lowTicks >= c.cfg.ScaleDownAfter {
			c.lowTicks = 0
			out = c.retire(now, capacity-desired, out)
		}
	default:
		c.lowTicks = 0
	}
	return out
}

// Wake handles the scale-from-zero edge: when an arrival lands on a
// fully retired or draining fleet, the driver calls Wake right after
// Observe and applies the returned decisions immediately instead of
// waiting for the next tick. A no-op whenever any capacity exists.
func (c *Controller) Wake(now time.Duration) []Decision {
	if c.count(StateReady)+c.count(StateWarming) > 0 {
		return nil
	}
	c.wakes++
	if c.target < 1 {
		c.target = 1
	}
	c.lowTicks = 0
	return c.provision(now, 1, nil)
}

// State reports slot w's lifecycle state.
func (c *Controller) State(w int) WorkerState {
	if w < 0 || w >= len(c.slots) {
		return StateRetired
	}
	return c.slots[w].state
}

// DrainStart reports when slot w began draining (drivers time real
// drains against it for NoteDrained).
func (c *Controller) DrainStart(w int) time.Duration {
	if w < 0 || w >= len(c.slots) {
		return 0
	}
	return c.slots[w].drainStart
}

// Snapshot reports the current status for gauges and reports.
func (c *Controller) Snapshot() Status {
	return Status{
		Target:     c.target,
		Ready:      c.count(StateReady),
		Warming:    c.count(StateWarming),
		Draining:   c.count(StateDraining),
		Retired:    c.count(StateRetired),
		Forecast:   c.forecast,
		Floor:      c.floor,
		ScaleUps:   c.scaleUps,
		ScaleDowns: c.scaleDowns,
		Wakes:      c.wakes,
		Drained:    c.drained,
		DrainTime:  c.drainTime,
	}
}
