package autoscale

import (
	"math"
	"sort"
	"time"

	"faasbatch/internal/policy"
)

// Histogram bucket bounds. Gap and latency buckets are in seconds,
// rate buckets in invocations/second. The last bucket is implicit +Inf.
var (
	// gapBounds buckets inter-arrival gaps: sub-millisecond storms
	// through multi-second trickles.
	gapBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}
	// latencyBounds mirrors the platform's latency histogram scale.
	latencyBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	// rateBounds buckets per-tick aggregate arrival rates; the
	// pre-warm floor reads a high quantile out of this histogram.
	rateBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
)

// histDecay is the per-tick multiplicative decay applied to the rate
// histogram so the pre-warm floor forgets ancient bursts: counts halve
// roughly every 34 ticks (0.98^34 ~ 0.5).
const histDecay = 0.98

// Hist is a fixed-bucket histogram with float counts so it can decay
// exponentially. Deterministic: no timestamps, no randomness.
type Hist struct {
	bounds []float64 // ascending upper bounds; implicit +Inf tail
	counts []float64 // len(bounds)+1
	total  float64
}

// NewHist builds a histogram over the given ascending upper bounds.
func NewHist(bounds []float64) *Hist {
	return &Hist{bounds: bounds, counts: make([]float64, len(bounds)+1)}
}

// Observe adds one observation.
func (h *Hist) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
}

// Decay multiplies every bucket by f in (0, 1].
func (h *Hist) Decay(f float64) {
	h.total = 0
	for i := range h.counts {
		h.counts[i] *= f
		h.total += h.counts[i]
	}
}

// Quantile returns the upper bound of the bucket where the cumulative
// count first reaches q*total (the +Inf tail reports the last finite
// bound). It reports 0 on an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	if h.total <= 0 {
		return 0
	}
	target := q * h.total
	cum := 0.0
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot copies the bucket bounds and counts (for metrics export).
func (h *Hist) Snapshot() (bounds []float64, counts []float64, total float64) {
	return append([]float64(nil), h.bounds...), append([]float64(nil), h.counts...), h.total
}

// fnDemand is the per-function demand state.
type fnDemand struct {
	rate     *policy.EWMA // smoothed arrivals/second, updated per tick
	pending  int          // arrivals in the currently open tick bucket
	lastRate float64      // arrivals/second over the last closed tick
	last     time.Duration
	seen     bool
}

// Demand tracks per-function arrival demand: an EWMA over per-tick
// arrival rates plus inter-arrival-gap, latency, and per-tick-rate
// histograms feeding the short-horizon forecaster. It is clock-agnostic
// (monotonic offsets) and deterministic; callers serialise access.
type Demand struct {
	alpha    float64
	fns      map[string]*fnDemand
	order    []string // sorted fn names: deterministic float summation
	gaps     *Hist
	latency  *Hist
	rates    *Hist
	lastTick time.Duration // bucket origin; offsets start at 0 in both drivers
	lastSeen time.Duration
	anySeen  bool
}

// NewDemand builds a tracker with EWMA smoothing alpha.
func NewDemand(alpha float64) *Demand {
	return &Demand{
		alpha:   alpha,
		fns:     make(map[string]*fnDemand),
		gaps:    NewHist(gapBounds),
		latency: NewHist(latencyBounds),
		rates:   NewHist(rateBounds),
	}
}

func (d *Demand) fn(fn string) *fnDemand {
	st, ok := d.fns[fn]
	if !ok {
		ew, err := policy.NewEWMA(d.alpha)
		if err != nil { // alpha validated by Config; defensive
			ew, _ = policy.NewEWMA(0.3)
		}
		st = &fnDemand{rate: ew}
		d.fns[fn] = st
		i := sort.SearchStrings(d.order, fn)
		d.order = append(d.order, "")
		copy(d.order[i+1:], d.order[i:])
		d.order[i] = fn
	}
	return st
}

// Observe records one arrival for fn at offset now.
func (d *Demand) Observe(fn string, now time.Duration) {
	st := d.fn(fn)
	st.pending++
	if st.seen && now > st.last {
		d.gaps.Observe((now - st.last).Seconds())
	}
	st.last, st.seen = now, true
	if !d.anySeen || now > d.lastSeen {
		d.lastSeen, d.anySeen = now, true
	}
}

// ObserveLatency records one completion latency (observability only —
// scaling decisions never read it, so sim and live stay conformant even
// though their latencies differ).
func (d *Demand) ObserveLatency(lat time.Duration) {
	d.latency.Observe(lat.Seconds())
}

// Advance closes the tick bucket [lastTick, now): per-function rates
// fold into the EWMAs and the aggregate rate lands in the rate
// histogram. Call once per evaluation tick, before Forecast.
func (d *Demand) Advance(now time.Duration) {
	dt := (now - d.lastTick).Seconds()
	if dt <= 0 {
		return
	}
	agg := 0.0
	for _, fn := range d.order {
		st := d.fns[fn]
		st.lastRate = float64(st.pending) / dt
		st.pending = 0
		st.rate.Observe(st.lastRate)
		agg += st.lastRate
	}
	d.rates.Decay(histDecay)
	// Zero-rate ticks are observations too: they pile weight into the
	// bottom bucket so a quiet spell actually walks the high quantile —
	// and with it the pre-warm floor — back down. Decay alone cannot
	// (it scales every bucket proportionally, leaving quantiles fixed).
	d.rates.Observe(agg)
	d.lastTick = now
}

// Forecast reports the short-horizon aggregate demand estimate in
// invocations/second: per function the max of the smoothed EWMA rate
// and the last tick's instantaneous rate (react up in one tick, decay
// smoothly), summed in sorted-name order so the float total is
// deterministic.
func (d *Demand) Forecast() float64 {
	total := 0.0
	for _, fn := range d.order {
		st := d.fns[fn]
		total += math.Max(st.rate.Value(), st.lastRate)
	}
	return total
}

// PeakRate reports the q-quantile of recent per-tick aggregate rates —
// the pre-warm floor's burst memory.
func (d *Demand) PeakRate(q float64) float64 { return d.rates.Quantile(q) }

// IdleFor reports how long the whole system has been idle at offset
// now (time since the last observed arrival; a very large value before
// any arrival).
func (d *Demand) IdleFor(now time.Duration) time.Duration {
	if !d.anySeen {
		return time.Duration(math.MaxInt64)
	}
	if now < d.lastSeen {
		return 0
	}
	return now - d.lastSeen
}

// Gaps, Latency, and Rates expose the histograms for metrics export.
func (d *Demand) Gaps() *Hist    { return d.gaps }
func (d *Demand) Latency() *Hist { return d.latency }
func (d *Demand) Rates() *Hist   { return d.rates }

// Functions reports the tracked function count.
func (d *Demand) Functions() int { return len(d.fns) }
