package autoscale

import (
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config, initial int) *Controller {
	t.Helper()
	c, err := New(cfg, initial)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func actions(ds []Decision) []Action {
	out := make([]Action, len(ds))
	for i, d := range ds {
		out[i] = d.Action
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{},                                  // no max
		{MaxWorkers: 0, TargetPerWorker: 1}, // max < 1
		{MaxWorkers: 2, TargetPerWorker: 0}, // no target rate
		{MaxWorkers: 2, MinWorkers: 3, TargetPerWorker: 1},  // min > max
		{MaxWorkers: 2, MinWorkers: -1, TargetPerWorker: 1}, // negative min
	}
	for i, c := range cases {
		if _, err := New(c, 0); err == nil {
			t.Errorf("case %d: want error for %+v", i, c)
		}
	}
	if _, err := New(Config{MaxWorkers: 4, TargetPerWorker: 10}, 1); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{MaxWorkers: 4, TargetPerWorker: 10}.WithDefaults()
	if cfg.EvalInterval != 500*time.Millisecond {
		t.Errorf("EvalInterval default = %v", cfg.EvalInterval)
	}
	if cfg.DrainBudget != 2*cfg.EvalInterval {
		t.Errorf("DrainBudget default = %v", cfg.DrainBudget)
	}
	if cfg.ScaleDownAfter != 3 || cfg.Alpha != 0.3 || cfg.Headroom != 0.2 {
		t.Errorf("defaults: %+v", cfg)
	}
}

// A demand burst beyond one worker's target rate must provision extra
// workers in a single tick (burst scale-up, no cooldown on the way up).
func TestBurstScaleUp(t *testing.T) {
	cfg := Config{MinWorkers: 1, MaxWorkers: 8, TargetPerWorker: 10, EvalInterval: time.Second, Warmup: time.Second}
	c := mustNew(t, cfg, 1)
	// 50 arrivals in the first second: rate 50/s → ceil(50*1.2/10) = 6.
	for i := 0; i < 50; i++ {
		c.Observe("fib", time.Duration(i)*20*time.Millisecond)
	}
	ds := c.Tick(time.Second)
	prov := 0
	for _, d := range ds {
		if d.Action == ActionProvision {
			prov++
		}
	}
	if prov != 5 {
		t.Fatalf("want 5 provisions (1 ready + 5 = 6), got %d: %v", prov, ds)
	}
	st := c.Snapshot()
	if st.Warming != 5 || st.Ready != 1 || st.Target != 6 {
		t.Fatalf("snapshot after burst: %+v", st)
	}
	// Warmup elapses: the next tick promotes all five.
	ds = c.Tick(2 * time.Second)
	ready := 0
	for _, d := range ds {
		if d.Action == ActionReady {
			ready++
		}
	}
	if ready != 5 {
		t.Fatalf("want 5 ready transitions, got %v", ds)
	}
}

// Scale-down waits for ScaleDownAfter consecutive low ticks, then
// drains highest slots first; drained slots retire after DrainBudget.
func TestScaleDownCooldownAndDrain(t *testing.T) {
	cfg := Config{
		MinWorkers: 1, MaxWorkers: 4, TargetPerWorker: 10,
		EvalInterval: time.Second, ScaleDownAfter: 3, DrainBudget: 2 * time.Second,
		ScaleToZeroAfter: time.Hour,
	}
	c := mustNew(t, cfg, 4)
	now := time.Duration(0)
	tick := func() []Decision { now += time.Second; return c.Tick(now) }
	// Modest demand: 5/s → desired 1. Ticks 1 and 2 are cooldown.
	for i := 0; i < 5; i++ {
		c.Observe("echo", time.Duration(i)*100*time.Millisecond)
	}
	if ds := tick(); len(ds) != 0 {
		t.Fatalf("tick1 (cooldown) emitted %v", ds)
	}
	if ds := tick(); len(ds) != 0 {
		t.Fatalf("tick2 (cooldown) emitted %v", ds)
	}
	ds := tick() // third low tick: drain 3 workers (slots 3, 2, 1)
	if len(ds) != 3 || ds[0].Action != ActionDrain || ds[0].Worker != 3 || ds[2].Worker != 1 {
		t.Fatalf("tick3 decisions: %v", ds)
	}
	if st := c.Snapshot(); st.Draining != 3 || st.Ready != 1 {
		t.Fatalf("snapshot after drain: %+v", st)
	}
	// DrainBudget (2s) later the drained slots retire.
	tick() // t=4s: not yet (retireAt = 5s)
	ds = tick()
	retired := 0
	for _, d := range ds {
		if d.Action == ActionRetire {
			retired++
		}
	}
	if retired != 3 {
		t.Fatalf("want 3 retires at t=5s, got %v", ds)
	}
}

// Demand returning mid-drain reclaims the still-warm draining worker
// instead of provisioning a cold one.
func TestReclaimDrainingWorker(t *testing.T) {
	cfg := Config{
		MinWorkers: 1, MaxWorkers: 2, TargetPerWorker: 10,
		EvalInterval: time.Second, ScaleDownAfter: 1, DrainBudget: time.Hour,
		ScaleToZeroAfter: time.Hour, Warmup: time.Hour,
	}
	c := mustNew(t, cfg, 2)
	// One low tick drains slot 1 (ScaleDownAfter=1).
	c.Observe("echo", 0)
	ds := c.Tick(time.Second)
	if len(ds) != 1 || ds[0].Action != ActionDrain || ds[0].Worker != 1 {
		t.Fatalf("drain decision: %v", ds)
	}
	// Burst: 40/s → desired 2 → reclaim slot 1 (not a cold provision,
	// which would be stuck warming for an hour).
	for i := 0; i < 40; i++ {
		c.Observe("echo", time.Second+time.Duration(i)*25*time.Millisecond)
	}
	ds = c.Tick(2 * time.Second)
	if len(ds) != 1 || ds[0].Action != ActionReclaim || ds[0].Worker != 1 {
		t.Fatalf("want reclaim of w1, got %v", ds)
	}
	if st := c.Snapshot(); st.Ready != 2 || st.Draining != 0 {
		t.Fatalf("snapshot after reclaim: %+v", st)
	}
}

// With MinWorkers 0 the fleet drains to zero after the idle gate, and
// Wake provisions a worker immediately when traffic returns.
func TestScaleToZeroAndWake(t *testing.T) {
	cfg := Config{
		MinWorkers: 0, MaxWorkers: 2, TargetPerWorker: 10,
		EvalInterval: time.Second, ScaleDownAfter: 2, DrainBudget: time.Second,
		ScaleToZeroAfter: 3 * time.Second,
	}
	c := mustNew(t, cfg, 1)
	c.Observe("echo", 0)
	now := time.Duration(0)
	sawDrain, sawRetire := false, false
	for i := 0; i < 8; i++ {
		now += time.Second
		for _, d := range c.Tick(now) {
			switch d.Action {
			case ActionDrain:
				sawDrain = true
				if d.Target != 0 {
					t.Fatalf("drain target = %d, want 0", d.Target)
				}
			case ActionRetire:
				sawRetire = true
			}
		}
	}
	if !sawDrain || !sawRetire {
		t.Fatalf("no full drain cycle: drain=%v retire=%v", sawDrain, sawRetire)
	}
	if st := c.Snapshot(); st.Ready != 0 || st.Retired != 2 {
		t.Fatalf("not scaled to zero: %+v", st)
	}
	// Traffic returns: Wake provisions slot 0 in the same instant.
	c.Observe("echo", now+time.Millisecond)
	ds := c.Wake(now + time.Millisecond)
	got := actions(ds)
	if len(got) != 2 || got[0] != ActionProvision || got[1] != ActionReady {
		t.Fatalf("wake decisions: %v", ds)
	}
	if c.Wake(now+2*time.Millisecond) != nil {
		t.Fatal("second Wake must be a no-op with capacity present")
	}
	if st := c.Snapshot(); st.Wakes != 1 || st.Ready != 1 {
		t.Fatalf("snapshot after wake: %+v", st)
	}
}

// The pre-warm floor holds burst-level capacity between recurring
// bursts so the next burst pays no cold starts.
func TestPrewarmFloorHoldsBetweenBursts(t *testing.T) {
	cfg := Config{
		MinWorkers: 1, MaxWorkers: 8, TargetPerWorker: 10,
		EvalInterval: time.Second, ScaleDownAfter: 2, ScaleToZeroAfter: time.Hour,
	}
	c := mustNew(t, cfg, 1)
	now := time.Duration(0)
	// Burst tick: 40/s.
	for i := 0; i < 40; i++ {
		c.Observe("fib", now+time.Duration(i)*25*time.Millisecond)
	}
	now += time.Second
	c.Tick(now)
	peak := c.Snapshot().Ready + c.Snapshot().Warming
	if peak < 4 {
		t.Fatalf("burst did not scale up: %+v", c.Snapshot())
	}
	// Several quiet-ish ticks (one trickle arrival each, so the idle
	// gate stays closed): the floor must keep capacity near the burst
	// level rather than collapsing to 1.
	for i := 0; i < 4; i++ {
		c.Observe("fib", now+time.Millisecond)
		now += time.Second
		c.Tick(now)
	}
	st := c.Snapshot()
	if st.Floor < 4 {
		t.Fatalf("pre-warm floor lost the burst memory: %+v", st)
	}
	if st.Ready+st.Warming < st.Floor {
		t.Fatalf("capacity below floor: %+v", st)
	}
}

// BusyIntegral accumulates provisioned worker-time.
func TestBusyIntegral(t *testing.T) {
	cfg := Config{MinWorkers: 2, MaxWorkers: 2, TargetPerWorker: 10, EvalInterval: time.Second}
	c := mustNew(t, cfg, 2)
	c.Observe("echo", 0)
	c.Tick(1 * time.Second)
	c.Tick(2 * time.Second)
	if got := c.BusyIntegral(); got != 4*time.Second {
		t.Fatalf("BusyIntegral = %v, want 4s (2 workers × 2s)", got)
	}
}

// NoteDrained only feeds metrics, never decisions.
func TestNoteDrainedMetricsOnly(t *testing.T) {
	cfg := Config{MinWorkers: 0, MaxWorkers: 1, TargetPerWorker: 10, EvalInterval: time.Second,
		ScaleDownAfter: 1, DrainBudget: 10 * time.Second, ScaleToZeroAfter: time.Second}
	c := mustNew(t, cfg, 1)
	c.Observe("echo", 0)
	var ds []Decision
	now := time.Duration(0)
	for i := 0; i < 3 && len(ds) == 0; i++ {
		now += time.Second
		ds = c.Tick(now)
	}
	if len(ds) == 0 || ds[0].Action != ActionDrain {
		t.Fatalf("no drain: %v", ds)
	}
	w := ds[0].Worker
	c.NoteDrained(w, c.DrainStart(w), now+500*time.Millisecond)
	if st := c.Snapshot(); st.Drained != 1 || st.DrainTime != 500*time.Millisecond {
		t.Fatalf("drain metrics: %+v", st)
	}
	// The slot still waits for DrainBudget before retiring.
	if got := c.State(w); got != StateDraining {
		t.Fatalf("state after NoteDrained = %v, want draining", got)
	}
}

func TestStateAndActionStrings(t *testing.T) {
	if StateRetired.String() != "retired" || StateWarming.String() != "warming" ||
		StateReady.String() != "ready" || StateDraining.String() != "draining" {
		t.Fatal("state strings")
	}
	for a, want := range map[Action]string{
		ActionProvision: "provision", ActionReady: "ready", ActionDrain: "drain",
		ActionReclaim: "reclaim", ActionRetire: "retire", Action(0): "unknown",
	} {
		if a.String() != want {
			t.Fatalf("action %d string = %q, want %q", a, a.String(), want)
		}
	}
	d := Decision{At: 1500 * time.Millisecond, Action: ActionProvision, Worker: 2, Target: 3}
	if d.String() != "1500ms provision w2 target=3" {
		t.Fatalf("decision string = %q", d.String())
	}
}
