package autoscale

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistQuantile(t *testing.T) {
	h := NewHist([]float64{1, 10, 100})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.5) // bucket ≤1
	}
	h.Observe(50) // bucket ≤100
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Fatalf("p95 = %v, want 100", got)
	}
	h.Observe(1e9) // +Inf tail reports the last finite bound
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 with overflow = %v, want 100", got)
	}
	h.Decay(0.5)
	if _, counts, total := h.Snapshot(); total <= 0 || counts[0] != 4.5 {
		t.Fatalf("decay: counts=%v total=%v", counts, total)
	}
}

func TestDemandForecastBasics(t *testing.T) {
	d := NewDemand(0.3)
	if d.Forecast() != 0 || d.Functions() != 0 {
		t.Fatal("fresh tracker must forecast 0")
	}
	for i := 0; i < 20; i++ {
		d.Observe("a", time.Duration(i)*50*time.Millisecond)
	}
	d.Advance(time.Second)
	if f := d.Forecast(); f != 20 {
		t.Fatalf("forecast = %v, want 20 (20 arrivals / 1s)", f)
	}
	// An idle tick decays the EWMA but the forecast stays the max of
	// EWMA and last rate, so it falls smoothly, never cliffs.
	d.Advance(2 * time.Second)
	if f := d.Forecast(); f <= 0 || f >= 20 {
		t.Fatalf("decayed forecast = %v, want in (0, 20)", f)
	}
	if idle := d.IdleFor(3 * time.Second); idle != 3*time.Second-950*time.Millisecond {
		t.Fatalf("IdleFor = %v", idle)
	}
	d.ObserveLatency(30 * time.Millisecond)
	if _, _, total := d.Latency().Snapshot(); total != 1 {
		t.Fatal("latency histogram not fed")
	}
	if _, _, total := d.Gaps().Snapshot(); total != 19 {
		t.Fatal("gap histogram not fed")
	}
}

// Property (satellite 3): the forecast is monotone in observed demand —
// scaling every tick's arrival count up by an integer factor never
// lowers the forecast, for any schedule shape.
func TestForecastMonotoneInDemand(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 1 // scale factor 1..4
		ticks := 8 + rng.Intn(8)
		counts := make([]int, ticks)
		for i := range counts {
			counts[i] = rng.Intn(40)
		}
		run := func(mult int) float64 {
			d := NewDemand(0.3)
			now := time.Duration(0)
			for _, n := range counts {
				for j := 0; j < n*mult; j++ {
					d.Observe("f", now+time.Duration(j)*time.Millisecond)
				}
				now += time.Second
				d.Advance(now)
			}
			return d.Forecast()
		}
		base, scaled := run(1), run(k)
		return scaled >= base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (satellite 3): hysteresis never oscillates on constant
// load — once the controller has both scaled up and settled, a steady
// arrival rate never produces scale directions that alternate. We
// assert the stronger form: over a long constant-rate run the decision
// stream never contains both an up (provision/reclaim) and a down
// (drain) action.
func TestHysteresisNoOscillationOnConstantLoad(t *testing.T) {
	prop := func(rateRaw uint16, initRaw, maxRaw uint8) bool {
		rate := int(rateRaw%200) + 1 // arrivals per second
		max := int(maxRaw%16) + 1
		initial := int(initRaw) % (max + 1)
		cfg := Config{
			MinWorkers: 1, MaxWorkers: max, TargetPerWorker: 10,
			EvalInterval: time.Second, ScaleToZeroAfter: time.Hour,
		}
		c, err := New(cfg, initial)
		if err != nil {
			return false
		}
		ups, downs := 0, 0
		now := time.Duration(0)
		for tick := 0; tick < 60; tick++ {
			for j := 0; j < rate; j++ {
				c.Observe("f", now+time.Duration(j)*time.Second/time.Duration(rate+1))
			}
			now += time.Second
			for _, d := range c.Tick(now) {
				switch d.Action {
				case ActionProvision, ActionReclaim:
					ups++
				case ActionDrain:
					downs++
				}
			}
		}
		return ups == 0 || downs == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// burstSchedule builds a seeded random bursty arrival schedule: quiet
// stretches, Poisson-ish trickles, and dense bursts over a few
// functions.
func burstSchedule(seed int64, ticks int) [][]struct {
	fn  string
	off time.Duration
} {
	rng := rand.New(rand.NewSource(seed))
	fns := []string{"fib", "echo", "s3upload"}
	out := make([][]struct {
		fn  string
		off time.Duration
	}, ticks)
	for i := range out {
		var n int
		switch rng.Intn(4) {
		case 0: // quiet
			n = 0
		case 1, 2: // trickle
			n = rng.Intn(8)
		case 3: // burst
			n = 40 + rng.Intn(80)
		}
		base := time.Duration(i) * time.Second
		for j := 0; j < n; j++ {
			out[i] = append(out[i], struct {
				fn  string
				off time.Duration
			}{fns[rng.Intn(len(fns))], base + time.Duration(rng.Int63n(int64(time.Second)))})
		}
	}
	return out
}

// runSchedule replays a burst schedule through a fresh controller and
// fingerprints the full decision sequence.
func runSchedule(t *testing.T, seed int64) string {
	t.Helper()
	cfg := Config{
		MinWorkers: 0, MaxWorkers: 12, TargetPerWorker: 10,
		EvalInterval: time.Second, Warmup: 500 * time.Millisecond,
		DrainBudget: 2 * time.Second, ScaleDownAfter: 2,
		ScaleToZeroAfter: 4 * time.Second,
	}
	c, err := New(cfg, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var lines []string
	for i, tick := range burstSchedule(seed, 40) {
		for _, a := range tick {
			c.Observe(a.fn, a.off)
			for _, d := range c.Wake(a.off) {
				lines = append(lines, d.String())
			}
		}
		for _, d := range c.Tick(time.Duration(i+1) * time.Second) {
			lines = append(lines, d.String())
		}
	}
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:8])
}

// Satellite 3: seeded burst-schedule determinism corpus (PR 6 style).
// Every seed must reproduce its committed decision-sequence
// fingerprint bit-for-bit; regenerate with -run TestBurstCorpus -v
// after an intentional control-loop change.
func TestBurstCorpusDeterminism(t *testing.T) {
	golden := map[int64]string{
		1: "9bd45ad7f3c7c5b9",
		2: "0ec77a7ae8864739",
		3: "5bb5dd8b010257c0",
		4: "6de094e3520471f8",
		5: "421ace66ca5c1ec9",
	}
	for seed, want := range golden {
		got := runSchedule(t, seed)
		if again := runSchedule(t, seed); again != got {
			t.Fatalf("seed %d: nondeterministic (%s vs %s)", seed, got, again)
		}
		t.Logf("seed %d fingerprint %s", seed, got)
		if got != want {
			t.Errorf("seed %d: fingerprint %s, want %s", seed, got, want)
		}
	}
}

// The decision fingerprint itself must be stable across struct reorder
// (guards the corpus encoding).
func TestDecisionFingerprintFormat(t *testing.T) {
	d := Decision{At: 2 * time.Second, Action: ActionDrain, Worker: 7, Target: 1, Forecast: 3.5}
	if got, want := fmt.Sprint(d), "2000ms drain w7 target=1"; got != want {
		t.Fatalf("fingerprint %q, want %q", got, want)
	}
}
