package pullsched

import (
	"reflect"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Core {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted zero workers")
	}
	if _, err := New(Config{Workers: 2, QueueDepth: -1}); err == nil {
		t.Fatal("New accepted negative queue depth")
	}
	if _, err := New(Config{Workers: 2, LeaseBudget: -time.Second}); err == nil {
		t.Fatal("New accepted negative lease budget")
	}
	c := mustNew(t, Config{Workers: 2})
	cfg := c.Config()
	if cfg.Shards != DefaultShards || cfg.BatchSize != DefaultBatchSize || cfg.Capacity != DefaultCapacity {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// An arrival with idle capacity grants immediately, least-loaded
// lowest-index first.
func TestImmediateGrant(t *testing.T) {
	c := mustNew(t, Config{Workers: 2})
	gs, shed := c.Enqueue(1, "hot", 0)
	if shed || len(gs) != 1 || gs[0].Worker != 0 || gs[0].ID != 1 || gs[0].Requeue {
		t.Fatalf("first enqueue: gs=%+v shed=%v", gs, shed)
	}
	gs, _ = c.Enqueue(2, "hot", time.Millisecond)
	if len(gs) != 1 || gs[0].Worker != 1 {
		t.Fatalf("second enqueue should late-bind to the idle worker: %+v", gs)
	}
	if c.Inflight(0) != 1 || c.Inflight(1) != 1 {
		t.Fatalf("inflight = %d,%d want 1,1", c.Inflight(0), c.Inflight(1))
	}
}

// A drained backlog grants in BatchSize batches, each batch to one
// worker (batching locality), overflowing to the next-least-loaded.
func TestBatchLocality(t *testing.T) {
	c := mustNew(t, Config{Workers: 2, BatchSize: 4, Capacity: 4})
	for w := 0; w < 2; w++ {
		c.SetWorker(w, false, 0)
	}
	for i := int64(1); i <= 6; i++ {
		if gs, shed := c.Enqueue(i, "hot", 0); len(gs) != 0 || shed {
			t.Fatalf("enqueue %d with no eligible workers: gs=%+v shed=%v", i, gs, shed)
		}
	}
	gs := c.SetWorker(0, true, time.Millisecond)
	if len(gs) != 4 {
		t.Fatalf("wake granted %d, want one BatchSize batch of 4: %+v", len(gs), gs)
	}
	for _, g := range gs {
		if g.Worker != 0 {
			t.Fatalf("batch split across workers: %+v", gs)
		}
	}
	gs = c.SetWorker(1, true, 2*time.Millisecond)
	if len(gs) != 2 || gs[0].Worker != 1 || gs[1].Worker != 1 {
		t.Fatalf("remainder should land on the newly idle worker: %+v", gs)
	}
	if c.Queued("hot") != 0 {
		t.Fatalf("queue depth %d after drain", c.Queued("hot"))
	}
}

// The depth bound sheds arrivals — the pull policy's admission control.
func TestQueueDepthShed(t *testing.T) {
	c := mustNew(t, Config{Workers: 1, QueueDepth: 2, Capacity: 1})
	c.Enqueue(1, "hot", 0) // leased
	c.Enqueue(2, "hot", 0) // queued
	c.Enqueue(3, "hot", 0) // queued
	gs, shed := c.Enqueue(4, "hot", 0)
	if !shed || len(gs) != 0 {
		t.Fatalf("fourth arrival should shed at depth 2: gs=%+v shed=%v", gs, shed)
	}
	st := c.Stats()
	if st.Shed != 1 || st.Enqueued != 3 || st.Queued != 2 {
		t.Fatalf("stats after shed: %+v", st)
	}
}

// A failed lease requeues exactly once and its re-grant prefers a
// different worker — failover, not a retry against the dead worker.
func TestFailRequeuesToDifferentWorker(t *testing.T) {
	c := mustNew(t, Config{Workers: 2})
	gs, _ := c.Enqueue(1, "hot", 0)
	if gs[0].Worker != 0 {
		t.Fatalf("setup: %+v", gs)
	}
	gs = c.Fail(1, time.Millisecond)
	if len(gs) != 1 || !gs[0].Requeue || gs[0].Worker != 1 || gs[0].ID != 1 {
		t.Fatalf("re-grant = %+v, want requeue of id 1 on worker 1", gs)
	}
	if again := c.Fail(99, time.Millisecond); len(again) != 0 {
		t.Fatalf("unknown id produced grants: %+v", again)
	}
	st := c.Stats()
	if st.Failed != 1 || st.Requeues != 1 || st.Granted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// When only the failed worker has capacity the re-grant falls back to
// it rather than starving.
func TestFailFallsBackToOnlyWorker(t *testing.T) {
	c := mustNew(t, Config{Workers: 1})
	c.Enqueue(1, "hot", 0)
	gs := c.Fail(1, time.Millisecond)
	if len(gs) != 1 || gs[0].Worker != 0 || !gs[0].Requeue {
		t.Fatalf("re-grant = %+v", gs)
	}
}

// A requeued item keeps its admission sequence: it re-dispatches before
// later arrivals of the same function.
func TestRequeueKeepsQueuePosition(t *testing.T) {
	c := mustNew(t, Config{Workers: 1, Capacity: 1, BatchSize: 1})
	c.Enqueue(1, "hot", 0) // leased
	c.Enqueue(2, "hot", 0) // queued behind it
	gs := c.Fail(1, time.Millisecond)
	if len(gs) != 1 || gs[0].ID != 1 {
		t.Fatalf("failed head should re-grant before the later arrival: %+v", gs)
	}
	gs = c.Complete(1, 2*time.Millisecond)
	if len(gs) != 1 || gs[0].ID != 2 {
		t.Fatalf("completion should pull the waiting arrival: %+v", gs)
	}
}

// Expire reclaims leases past the budget, requeues them exactly once,
// and a late Complete withdraws the queued copy so one invocation is
// never served twice.
func TestExpireAndLateCompletion(t *testing.T) {
	c := mustNew(t, Config{Workers: 1, LeaseBudget: 100 * time.Millisecond})
	c.Enqueue(1, "hot", 0)
	if gs := c.Expire(50 * time.Millisecond); len(gs) != 0 {
		t.Fatalf("early expiry: %+v", gs)
	}
	// Take the worker out so the expired item stays queued.
	c.SetWorker(0, false, 60*time.Millisecond)
	if gs := c.Expire(100 * time.Millisecond); len(gs) != 0 {
		t.Fatalf("no eligible worker, yet expiry granted: %+v", gs)
	}
	st := c.Stats()
	if st.Expired != 1 || st.Requeues != 1 || st.Queued != 1 || st.Leases != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}
	// The original forward turns out to have succeeded after all.
	c.Complete(1, 110*time.Millisecond)
	if gs := c.SetWorker(0, true, 120*time.Millisecond); len(gs) != 0 {
		t.Fatalf("withdrawn item re-granted: %+v", gs)
	}
	st = c.Stats()
	if st.Completed != 1 || st.Queued != 0 || st.Leases != 0 {
		t.Fatalf("stats after late completion: %+v", st)
	}
}

// Expiry with capacity available re-grants immediately, exactly once.
func TestExpireRegrants(t *testing.T) {
	c := mustNew(t, Config{Workers: 2, LeaseBudget: 100 * time.Millisecond})
	c.Enqueue(1, "hot", 0)
	gs := c.Expire(150 * time.Millisecond)
	if len(gs) != 1 || !gs[0].Requeue || gs[0].ID != 1 || gs[0].Worker != 1 {
		t.Fatalf("expiry re-grant = %+v, want id 1 on worker 1", gs)
	}
	if gs = c.Expire(160 * time.Millisecond); len(gs) != 0 {
		t.Fatalf("fresh lease expired immediately: %+v", gs)
	}
}

// Queued work wakes a worker that turns eligible — scale-from-zero.
func TestWakeDrainsQueue(t *testing.T) {
	c := mustNew(t, Config{Workers: 2})
	c.SetWorker(0, false, 0)
	c.SetWorker(1, false, 0)
	for i := int64(1); i <= 3; i++ {
		c.Enqueue(i, "hot", 0)
	}
	gs := c.SetWorker(1, true, time.Millisecond)
	if len(gs) != 3 {
		t.Fatalf("wake drained %d/3: %+v", len(gs), gs)
	}
	for _, g := range gs {
		if g.Worker != 1 {
			t.Fatalf("grant to ineligible worker: %+v", g)
		}
	}
}

// The deepest queue is served first; ties break on the earliest head
// admission sequence, so the decision order is total.
func TestDeepestQueueFirst(t *testing.T) {
	c := mustNew(t, Config{Workers: 1, BatchSize: 8, Capacity: 8})
	c.SetWorker(0, false, 0)
	c.Enqueue(1, "cold", 0)
	c.Enqueue(2, "hot", 0)
	c.Enqueue(3, "hot", 0)
	gs := c.SetWorker(0, true, time.Millisecond)
	want := []int64{2, 3, 1}
	var got []int64
	for _, g := range gs {
		got = append(got, g.ID)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grant order %v, want hot queue (deeper) first: %v", got, want)
	}
}

// Replaying one event script through two cores yields byte-identical
// grant logs — the property the sim-vs-live conformance test builds on.
func TestDeterministicReplay(t *testing.T) {
	script := func(c *Core) {
		fns := []string{"alpha", "beta", "gamma", "hot", "hot", "hot"}
		id := int64(0)
		for round := 0; round < 8; round++ {
			off := time.Duration(round) * 10 * time.Millisecond
			for _, fn := range fns {
				id++
				c.Enqueue(id, fn, off)
			}
			if round == 2 {
				c.SetWorker(1, false, off)
			}
			if round == 5 {
				c.SetWorker(1, true, off)
			}
			c.Fail(id, off+time.Millisecond)
			for done := id - int64(len(fns)) + 1; done <= id; done++ {
				c.Complete(done, off+5*time.Millisecond)
			}
		}
	}
	cfg := Config{Workers: 4, Capacity: 2, BatchSize: 2, QueueDepth: 16}
	a, b := mustNew(t, cfg), mustNew(t, cfg)
	script(a)
	script(b)
	if !reflect.DeepEqual(a.Grants(), b.Grants()) {
		t.Fatal("two replays of one script diverged")
	}
	if len(a.Grants()) == 0 {
		t.Fatal("script produced no grants")
	}
	st := a.Stats()
	if st.Queued != 0 || st.Leases != 0 {
		t.Fatalf("script should quiesce: %+v", st)
	}
	// Conservation: everything admitted was acked, aborted, or still held.
	if st.Enqueued != st.Completed+st.Aborted {
		t.Fatalf("conservation: enqueued %d != completed %d + aborted %d", st.Enqueued, st.Completed, st.Aborted)
	}
}

// Abort releases a lease or withdraws a queued item.
func TestAbort(t *testing.T) {
	c := mustNew(t, Config{Workers: 1, Capacity: 1})
	c.Enqueue(1, "hot", 0)
	c.Enqueue(2, "hot", 0)
	if gs := c.Abort(2, time.Millisecond); len(gs) != 0 {
		t.Fatalf("aborting a queued item granted: %+v", gs)
	}
	if gs := c.Abort(1, 2*time.Millisecond); len(gs) != 0 {
		t.Fatalf("nothing left to grant: %+v", gs)
	}
	st := c.Stats()
	if st.Aborted != 2 || st.Queued != 0 || st.Leases != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
