// Package pullsched is the clock-agnostic decision core for the
// pull-based late-binding router policy (-policy=pull).
//
// The push consistent-hash policy binds a function to a worker at
// arrival time, so a hot function queues behind its hash slot even when
// the rest of the fleet sits idle. Pull scheduling inverts the binding:
// arrivals park in sharded per-function queues, and a worker with free
// lease capacity pulls a batch from the deepest queue — hot functions
// late-bind to the least-loaded worker at the moment capacity frees,
// exactly the Hiku/Archipelago shape.
//
// The core is shared verbatim by the cluster simulator
// (internal/cluster, Balancing=Pull) and the live router
// (internal/router, Config.Policy="pull"). It never reads a clock: every
// event carries an offset from the driver's epoch (virtual time in the
// sim, time.Since(start) live), so the sim-vs-live conformance test can
// replay one schedule through both drivers and assert the grant
// sequences are identical. All tie-breaks are total orders (queue depth
// then head admission sequence; worker load then index), so a given
// event sequence yields exactly one grant sequence.
//
// Lease protocol: a grant leases one invocation to one worker. The
// driver acks with Complete, requeues with Fail (worker died mid-lease —
// the item returns to the front of its queue and prefers a different
// worker on re-grant), or drops with Abort (the caller gave up). Expire
// requeues leases older than LeaseBudget, the backstop for drivers whose
// lease holders can vanish without an ack. Each requeue produces exactly
// one replacement grant, so the zero-lost-invocations guarantee survives
// worker death mid-lease.
package pullsched

import (
	"fmt"
	"time"

	"faasbatch/internal/hashmix"
)

// Defaults for Config's zero values.
const (
	DefaultShards    = 8
	DefaultBatchSize = 4
	DefaultCapacity  = 8
)

// maxGrantLog bounds the retained grant log (conformance tests and
// scenario reports read it; Stats keeps the lifetime totals).
const maxGrantLog = 4096

// Config parameterises a Core. The zero value of every field but
// Workers is usable.
type Config struct {
	// Workers is the fleet slot count; slot i is worker i in the
	// driver's ordering (node i in the sim, Config.Workers[i] live).
	Workers int
	// Shards is the queue shard count; functions hash to a shard
	// (default DefaultShards). Sharding bounds the scan cost of queue
	// bookkeeping; decisions are serialised by the driver regardless, as
	// determinism requires a total decision order.
	Shards int
	// QueueDepth bounds each function's queue; an arrival past the
	// bound is shed (the pull policy's admission control — depth-based,
	// not per-slot). 0 means unbounded.
	QueueDepth int
	// BatchSize caps the invocations one pull grants from a single
	// queue to a single worker (default DefaultBatchSize) — the batching
	// locality knob: a pulled batch lands in one worker's dispatch
	// window.
	BatchSize int
	// Capacity is the concurrent-lease cap per worker (default
	// DefaultCapacity).
	Capacity int
	// LeaseBudget expires leases not acked within this span; expired
	// leases requeue at the front of their function's queue. 0 disables
	// expiry (live drivers whose lease holders always ack — every router
	// forward is bounded by its ForwardTimeout — don't need it).
	LeaseBudget time.Duration
}

// withDefaults resolves zero values.
func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return cfg
}

// Grant is one scheduling decision: invocation ID leased to Worker.
type Grant struct {
	// Seq is the grant's position in the core's decision sequence,
	// starting at 1. The sim-vs-live conformance test compares these.
	Seq uint64
	// ID is the invocation being leased.
	ID int64
	// Fn is the invocation's function.
	Fn string
	// Worker is the leased worker slot.
	Worker int
	// At is the driver offset the grant was issued at.
	At time.Duration
	// Requeue marks a re-dispatch of a failed or expired lease.
	Requeue bool
}

// Stats aggregates the core's lifetime counters plus current depths.
type Stats struct {
	// Enqueued counts accepted arrivals.
	Enqueued uint64
	// Granted counts leases issued (including re-dispatches).
	Granted uint64
	// Requeues counts failed/expired leases returned to their queue.
	Requeues uint64
	// Expired counts leases the LeaseBudget sweep reclaimed.
	Expired uint64
	// Shed counts arrivals refused at the QueueDepth bound.
	Shed uint64
	// Completed counts acked leases.
	Completed uint64
	// Failed counts leases the driver reported failed.
	Failed uint64
	// Aborted counts invocations the caller dropped.
	Aborted uint64
	// Queued is the current total queue depth across functions.
	Queued int
	// Leases is the current outstanding lease count.
	Leases int
}

// item is one queued invocation.
type item struct {
	id int64
	fn string
	// seq is the admission sequence, the head tie-break. Requeued items
	// keep their original seq, so a re-dispatched invocation never loses
	// its place to later arrivals.
	seq      uint64
	requeues int
	// lastWorker is the slot the item's last failed lease ran on (-1 if
	// never leased); re-grants prefer a different worker.
	lastWorker int
}

// fnQueue is one function's FIFO.
type fnQueue struct {
	items []*item
}

// lease is one outstanding grant.
type lease struct {
	it      *item
	worker  int
	granted time.Duration
	seq     uint64
}

// workerState tracks one slot.
type workerState struct {
	eligible bool
	inflight int
}

// Core holds the pull scheduler's queues, leases and worker states. It
// is not internally locked: the sim driver runs on the single-threaded
// engine and the live driver serialises calls under its own mutex, the
// same discipline as internal/autoscale.Controller.
type Core struct {
	cfg     Config
	shards  []map[string]*fnQueue
	workers []workerState
	leases  map[int64]*lease
	queued  int
	admSeq  uint64
	gntSeq  uint64
	log     []Grant
	stats   Stats
}

// New builds a core for cfg.Workers slots, all initially eligible.
func New(cfg Config) (*Core, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("pullsched: worker count must be positive, got %d", cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("pullsched: queue depth must be >= 0, got %d", cfg.QueueDepth)
	}
	if cfg.LeaseBudget < 0 {
		return nil, fmt.Errorf("pullsched: lease budget must be >= 0, got %v", cfg.LeaseBudget)
	}
	cfg = cfg.withDefaults()
	c := &Core{
		cfg:     cfg,
		shards:  make([]map[string]*fnQueue, cfg.Shards),
		workers: make([]workerState, cfg.Workers),
		leases:  make(map[int64]*lease),
	}
	for i := range c.shards {
		c.shards[i] = make(map[string]*fnQueue)
	}
	for i := range c.workers {
		c.workers[i].eligible = true
	}
	return c, nil
}

// Config returns the resolved configuration (defaults applied).
func (c *Core) Config() Config { return c.cfg }

// shard returns fn's queue shard.
func (c *Core) shard(fn string) map[string]*fnQueue {
	return c.shards[int(hashmix.String(fn)%uint64(len(c.shards)))]
}

// Enqueue admits invocation id of function fn at offset off. It returns
// the grants the arrival unlocked (the arrival itself when a worker has
// capacity) and shed=true when fn's queue is at its depth bound — the
// item was refused and must be answered with an overload error.
func (c *Core) Enqueue(id int64, fn string, off time.Duration) ([]Grant, bool) {
	sh := c.shard(fn)
	q := sh[fn]
	if c.cfg.QueueDepth > 0 && q != nil && len(q.items) >= c.cfg.QueueDepth {
		c.stats.Shed++
		return nil, true
	}
	if q == nil {
		q = &fnQueue{}
		sh[fn] = q
	}
	c.admSeq++
	q.items = append(q.items, &item{id: id, fn: fn, seq: c.admSeq, lastWorker: -1})
	c.queued++
	c.stats.Enqueued++
	return c.pull(off), false
}

// Complete acks invocation id's lease: the worker finished it. When the
// id is queued rather than leased (an expiry requeued it while the
// original forward was still completing), the queued copy is withdrawn
// instead, so one invocation is never served twice. Freed capacity
// pulls more work.
func (c *Core) Complete(id int64, off time.Duration) []Grant {
	if l, ok := c.leases[id]; ok {
		c.dropLease(l)
		c.stats.Completed++
		return c.pull(off)
	}
	if c.dequeue(id) {
		c.stats.Completed++
	}
	return nil
}

// Fail requeues invocation id after its worker failed mid-lease: the
// item returns to the front of its function's queue keeping its
// admission sequence, and its re-grant prefers a different worker. The
// freed capacity (and the requeued item itself) may grant immediately.
// Unknown ids are ignored — the lease may already have expired and
// requeued.
func (c *Core) Fail(id int64, off time.Duration) []Grant {
	l, ok := c.leases[id]
	if !ok {
		return nil
	}
	c.dropLease(l)
	c.stats.Failed++
	c.requeue(l.it)
	return c.pull(off)
}

// Abort withdraws invocation id entirely — the caller gave up (context
// cancelled, attempts exhausted). Freed capacity pulls more work.
func (c *Core) Abort(id int64, off time.Duration) []Grant {
	if l, ok := c.leases[id]; ok {
		c.dropLease(l)
		c.stats.Aborted++
		return c.pull(off)
	}
	if c.dequeue(id) {
		c.stats.Aborted++
	}
	return nil
}

// Expire requeues every lease older than LeaseBudget at offset off and
// returns the re-grants. A no-op when LeaseBudget is 0.
func (c *Core) Expire(off time.Duration) []Grant {
	if c.cfg.LeaseBudget <= 0 || len(c.leases) == 0 {
		return nil
	}
	var expired []*lease
	for _, l := range c.leases {
		if off-l.granted >= c.cfg.LeaseBudget {
			expired = append(expired, l)
		}
	}
	if len(expired) == 0 {
		return nil
	}
	// Requeue in descending grant order so prepends leave each queue
	// front ascending by admission sequence (map iteration order must
	// not leak into the decision sequence).
	for i := 1; i < len(expired); i++ {
		for j := i; j > 0 && expired[j-1].seq < expired[j].seq; j-- {
			expired[j-1], expired[j] = expired[j], expired[j-1]
		}
	}
	for _, l := range expired {
		c.dropLease(l)
		c.stats.Expired++
		c.requeue(l.it)
	}
	return c.pull(off)
}

// SetWorker flips slot w's routing eligibility: draining or down
// workers stop pulling (their outstanding leases keep running until the
// driver acks or fails them); a newly eligible worker immediately
// drains queued work — the scale-from-zero wake path.
func (c *Core) SetWorker(w int, eligible bool, off time.Duration) []Grant {
	if w < 0 || w >= len(c.workers) || c.workers[w].eligible == eligible {
		return nil
	}
	c.workers[w].eligible = eligible
	if !eligible {
		return nil
	}
	return c.pull(off)
}

// Stats snapshots the counters.
func (c *Core) Stats() Stats {
	st := c.stats
	st.Queued = c.queued
	st.Leases = len(c.leases)
	return st
}

// Grants returns the retained decision log in order.
func (c *Core) Grants() []Grant { return append([]Grant(nil), c.log...) }

// Queued reports fn's current queue depth.
func (c *Core) Queued(fn string) int {
	if q := c.shard(fn)[fn]; q != nil {
		return len(q.items)
	}
	return 0
}

// Inflight reports slot w's outstanding lease count.
func (c *Core) Inflight(w int) int {
	if w < 0 || w >= len(c.workers) {
		return 0
	}
	return c.workers[w].inflight
}

// Eligible reports whether slot w may pull.
func (c *Core) Eligible(w int) bool {
	return w >= 0 && w < len(c.workers) && c.workers[w].eligible
}

// dropLease removes l and releases its worker capacity.
func (c *Core) dropLease(l *lease) {
	delete(c.leases, l.it.id)
	c.workers[l.worker].inflight--
}

// requeue returns it to the front of its function's queue.
func (c *Core) requeue(it *item) {
	it.requeues++
	c.stats.Requeues++
	sh := c.shard(it.fn)
	q := sh[it.fn]
	if q == nil {
		q = &fnQueue{}
		sh[it.fn] = q
	}
	q.items = append([]*item{it}, q.items...)
	c.queued++
}

// dequeue withdraws a queued copy of id, reporting whether it existed.
func (c *Core) dequeue(id int64) bool {
	for _, sh := range c.shards {
		for fn, q := range sh {
			for i, it := range q.items {
				if it.id != id {
					continue
				}
				q.items = append(q.items[:i], q.items[i+1:]...)
				c.queued--
				if len(q.items) == 0 {
					delete(sh, fn)
				}
				return true
			}
		}
	}
	return false
}

// pull is the late-binding step: while any queue holds work and any
// eligible worker has lease capacity, grant up to BatchSize items from
// the deepest queue (tie: earliest head admission sequence) to the
// least-loaded eligible worker (tie: lowest index). The whole batch
// goes to one worker so it lands in one dispatch window, preserving the
// batching locality the hash policy gets from function pinning.
func (c *Core) pull(off time.Duration) []Grant {
	var out []Grant
	for {
		q, sh, fn := c.deepest()
		if q == nil {
			return out
		}
		head := q.items[0]
		w := c.target(head.lastWorker)
		if w < 0 {
			return out
		}
		n := c.cfg.BatchSize
		if room := c.cfg.Capacity - c.workers[w].inflight; room < n {
			n = room
		}
		if len(q.items) < n {
			n = len(q.items)
		}
		for i := 0; i < n; i++ {
			it := q.items[0]
			q.items = q.items[1:]
			c.queued--
			c.gntSeq++
			g := Grant{
				Seq:     c.gntSeq,
				ID:      it.id,
				Fn:      it.fn,
				Worker:  w,
				At:      off,
				Requeue: it.requeues > 0,
			}
			it.lastWorker = w
			c.leases[it.id] = &lease{it: it, worker: w, granted: off, seq: c.gntSeq}
			c.workers[w].inflight++
			c.stats.Granted++
			c.log = append(c.log, g)
			out = append(out, g)
		}
		if over := len(c.log) - maxGrantLog; over > 0 {
			c.log = append(c.log[:0], c.log[over:]...)
		}
		if len(q.items) == 0 {
			delete(sh, fn)
		}
	}
}

// deepest returns the queue to pull from: maximum depth, ties broken by
// the earliest head admission sequence (a total order — admission
// sequences are unique — so map iteration order never shows through).
func (c *Core) deepest() (*fnQueue, map[string]*fnQueue, string) {
	var (
		bestQ  *fnQueue
		bestSh map[string]*fnQueue
		bestFn string
	)
	for _, sh := range c.shards {
		for fn, q := range sh {
			if len(q.items) == 0 {
				continue
			}
			if bestQ == nil ||
				len(q.items) > len(bestQ.items) ||
				(len(q.items) == len(bestQ.items) && q.items[0].seq < bestQ.items[0].seq) {
				bestQ, bestSh, bestFn = q, sh, fn
			}
		}
	}
	return bestQ, bestSh, bestFn
}

// target picks the grant worker: eligible with spare capacity, minimum
// inflight, lowest index on ties. A re-granted item's previous worker
// (exclude) is avoided when any alternative exists — that is what makes
// a requeue a failover rather than a retry against the same dead
// worker.
func (c *Core) target(exclude int) int {
	best := -1
	for i := range c.workers {
		w := &c.workers[i]
		if !w.eligible || w.inflight >= c.cfg.Capacity || i == exclude {
			continue
		}
		if best < 0 || w.inflight < c.workers[best].inflight {
			best = i
		}
	}
	if best < 0 && exclude >= 0 && exclude < len(c.workers) {
		if w := &c.workers[exclude]; w.eligible && w.inflight < c.cfg.Capacity {
			best = exclude
		}
	}
	return best
}
