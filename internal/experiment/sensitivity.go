package experiment

import (
	"fmt"
	"io"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/workload"
)

// sensitivityKnob is one calibrated node parameter being perturbed.
type sensitivityKnob struct {
	name  string
	apply func(*node.Config, float64)
}

// sensitivityKnobs lists the calibration constants that could plausibly
// flip the paper's conclusions if they were wrong.
var sensitivityKnobs = []sensitivityKnob{
	{"CreateCPUWork", func(c *node.Config, f float64) {
		c.CreateCPUWork = time.Duration(float64(c.CreateCPUWork) * f)
	}},
	{"ContainerInitCPUWork", func(c *node.Config, f float64) {
		c.ContainerInitCPUWork = time.Duration(float64(c.ContainerInitCPUWork) * f)
	}},
	{"ColdStartLatency", func(c *node.Config, f float64) {
		c.ColdStartLatency = time.Duration(float64(c.ColdStartLatency) * f)
	}},
	{"ContainerIdleCPU", func(c *node.Config, f float64) {
		c.ContainerIdleCPU *= f
	}},
	{"ContainerMem", func(c *node.Config, f float64) {
		c.ContainerMem = int64(float64(c.ContainerMem) * f)
	}},
}

// RunSensitivity perturbs each calibrated node constant by 0.5x and 2x
// and reports whether the headline orderings survive: FaaSBatch fewer
// containers than Vanilla, lower p90 latency, lower CPU. The reproduction
// is only credible if its conclusions do not hinge on any single
// calibration value.
func RunSensitivity(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.IO, opts)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"Sensitivity — headline orderings under 0.5x / 2x calibration perturbations (I/O workload)",
		"knob", "factor", "containers FB/V", "p90 FB/V", "cpu FB/V", "orderings hold")
	for _, knob := range sensitivityKnobs {
		for _, factor := range []float64{0.5, 1.0, 2.0} {
			ncfg := node.DefaultConfig()
			knob.apply(&ncfg, factor)
			var results [2]*Result
			for i, p := range []PolicyKind{PolicyFaaSBatch, PolicyVanilla} {
				res, err := Run(Config{Policy: p, Trace: tr, Seed: opts.Seed, Node: ncfg})
				if err != nil {
					return fmt.Errorf("sensitivity %s x%.1f %v: %w", knob.name, factor, p, err)
				}
				results[i] = res
			}
			fb, va := results[0], results[1]
			fbP90 := fb.CDF(metrics.EndToEnd).P(0.90)
			vaP90 := va.CDF(metrics.EndToEnd).P(0.90)
			holds := fb.TotalContainers < va.TotalContainers &&
				fbP90 < vaP90 &&
				fb.CPUUtil < va.CPUUtil
			tbl.AddRow(knob.name, fmt.Sprintf("%.1fx", factor),
				fmt.Sprintf("%d/%d", fb.TotalContainers, va.TotalContainers),
				fmt.Sprintf("%v/%v", fbP90.Round(time.Millisecond), vaP90.Round(time.Millisecond)),
				fmt.Sprintf("%.1f%%/%.1f%%", fb.CPUUtil*100, va.CPUUtil*100),
				holds)
		}
	}
	return tbl.Render(w)
}
