package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"faasbatch/internal/cluster"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// RunAblationMultiplex isolates the Resource Multiplexer (§III-D) from
// the batching modules: FaaSBatch with the multiplexer on versus off on
// the I/O workload, plus Vanilla for reference. The batching-only variant
// still saves containers but pays the full redundant-creation cost —
// exactly the gap the multiplexer closes.
func RunAblationMultiplex(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.IO, opts)
	if err != nil {
		return err
	}
	type variant struct {
		label      string
		policy     PolicyKind
		disableMux bool
	}
	variants := []variant{
		{"faasbatch (full)", PolicyFaaSBatch, false},
		{"faasbatch (no multiplexer)", PolicyFaaSBatch, true},
		{"vanilla", PolicyVanilla, false},
	}
	tbl := metrics.NewTable(
		"Ablation — Resource Multiplexer on the I/O workload",
		"variant", "containers", "clients built", "client MB/inv", "exec p50", "exec p99", "total mean")
	for _, v := range variants {
		res, err := Run(Config{
			Policy:           v.policy,
			Trace:            tr,
			Seed:             opts.Seed,
			DisableMultiplex: v.disableMux,
		})
		if err != nil {
			return fmt.Errorf("ablation %s: %w", v.label, err)
		}
		exec := res.CDF(metrics.Execution)
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(v.label, res.TotalContainers, res.Runner.ClientsBuilt,
			fmt.Sprintf("%.2f", res.ClientMemPerInvocation/(1<<20)),
			exec.P(0.5).Round(time.Millisecond), exec.P(0.99).Round(time.Millisecond),
			tot.Mean().Round(time.Millisecond))
	}
	return tbl.Render(w)
}

// RunAblationKeepAlive sweeps the container keep-alive across policies on
// the I/O workload: short keep-alives trade memory for cold starts. The
// paper fixes keep-alive long enough to never evict during a run; this
// ablation shows how much of everyone's memory story that choice carries,
// and that FaaSBatch's advantage survives aggressive eviction.
func RunAblationKeepAlive(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.IO, opts)
	if err != nil {
		return err
	}
	keepAlives := []time.Duration{5 * time.Second, 30 * time.Second, 10 * time.Minute}
	for _, p := range []PolicyKind{PolicyVanilla, PolicyFaaSBatch} {
		tbl := metrics.NewTable(
			fmt.Sprintf("Ablation — keep-alive sweep, %v, I/O workload", p),
			"keep-alive", "containers", "evictions", "avg mem (MB)", "cold-start p99", "total mean")
		for _, ka := range keepAlives {
			ncfg := node.DefaultConfig()
			ncfg.KeepAlive = ka
			res, err := Run(Config{Policy: p, Trace: tr, Seed: opts.Seed, Node: ncfg})
			if err != nil {
				return fmt.Errorf("keep-alive %v/%v: %w", p, ka, err)
			}
			cold := res.CDF(metrics.ColdStart)
			tot := res.CDF(metrics.EndToEnd)
			tbl.AddRow(ka, res.TotalContainers, res.Evictions,
				fmt.Sprintf("%.0f", res.AvgMemBytes/(1<<20)),
				cold.P(0.99).Round(time.Millisecond), tot.Mean().Round(time.Millisecond))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAblationBurstiness compares bursty versus steady (Poisson) arrivals
// of the same volume. FaaSBatch's edge comes from temporal locality: on
// the bursty trace it folds spikes into few containers, while under
// steady arrivals the window rarely holds more than a couple of
// invocations and the gap to Vanilla narrows — an honest boundary of the
// paper's claim.
func RunAblationBurstiness(w io.Writer, opts Options) error {
	bcfg := trace.DefaultBurstConfig(workload.IO)
	bcfg.Seed = opts.Seed
	bcfg.N = opts.scaled(bcfg.N) / 2
	bursty, err := trace.SynthesizeBurst(bcfg)
	if err != nil {
		return err
	}
	steady, err := trace.SynthesizeSteady(bcfg)
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		label string
		tr    trace.Trace
	}{{"bursty (paper replay)", bursty}, {"steady (Poisson, same volume)", steady}} {
		tbl := metrics.NewTable(
			fmt.Sprintf("Ablation — arrival pattern: %s", tc.label),
			"policy", "containers", "inv/container", "total p50", "total p99")
		for _, p := range []PolicyKind{PolicyVanilla, PolicyFaaSBatch} {
			res, err := Run(Config{Policy: p, Trace: tc.tr, Seed: opts.Seed})
			if err != nil {
				return fmt.Errorf("burstiness %s/%v: %w", tc.label, p, err)
			}
			tot := res.CDF(metrics.EndToEnd)
			tbl.AddRow(res.Policy, res.TotalContainers,
				fmt.Sprintf("%.1f", float64(tc.tr.Len())/float64(res.TotalContainers)),
				tot.P(0.5).Round(time.Millisecond), tot.P(0.99).Round(time.Millisecond))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RunExtensionCluster reproduces the scale-out extension: the CPU burst
// on growing FaaSBatch fleets and the routing-strategy trade-off
// (function affinity preserves batching locality; per-invocation
// balancing fragments windows).
func RunExtensionCluster(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.CPUIntensive, opts)
	if err != nil {
		return err
	}
	// The paper's CPU benchmark is one deployed function; a fleet only
	// matters with several. Split the load across 16 hot functions with
	// deterministic random assignment.
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := range tr.Invocations {
		tr.Invocations[i].Fn = fmt.Sprintf("fn%02d", rng.Intn(16))
	}
	tbl := metrics.NewTable(
		"Extension — FaaSBatch cluster scale-out (fn-affinity routing)",
		"nodes", "containers", "imbalance", "total p50", "total p99")
	for _, nodes := range []int{1, 2, 4, 8} {
		res, err := cluster.Replay(cluster.ReplayConfig{
			Cluster: cluster.Config{Nodes: nodes},
			Trace:   tr,
			Seed:    opts.Seed,
		})
		if err != nil {
			return fmt.Errorf("cluster %d nodes: %w", nodes, err)
		}
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(nodes, res.TotalContainers, fmt.Sprintf("%.2f", res.Imbalance()),
			tot.P(0.5).Round(time.Millisecond), tot.P(0.99).Round(time.Millisecond))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	tbl2 := metrics.NewTable(
		"Extension — routing strategies on 4 nodes",
		"balancing", "containers", "imbalance", "total p99")
	for _, bal := range []cluster.Balancing{cluster.FnAffinity, cluster.LeastLoaded, cluster.RoundRobin} {
		res, err := cluster.Replay(cluster.ReplayConfig{
			Cluster: cluster.Config{Nodes: 4, Balancing: bal},
			Trace:   tr,
			Seed:    opts.Seed,
		})
		if err != nil {
			return fmt.Errorf("cluster %v: %w", bal, err)
		}
		tot := res.CDF(metrics.EndToEnd)
		tbl2.AddRow(bal.String(), res.TotalContainers, fmt.Sprintf("%.2f", res.Imbalance()),
			tot.P(0.99).Round(time.Millisecond))
	}
	return tbl2.Render(w)
}
