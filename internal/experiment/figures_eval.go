package experiment

import (
	"fmt"
	"io"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// SweepIntervals are the dispatch intervals of the paper's resource-cost
// sweep (§IV "Dispatch Intervals": 0.01 s to 0.5 s).
var SweepIntervals = []time.Duration{
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
}

// latencyPercentiles are the CDF points printed for Figs. 11/12.
var latencyPercentiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.96, 0.99}

// evalTrace builds the evaluation workload: the full 800-invocation burst
// for CPU-intensive functions, its first half for I/O functions (§IV).
func evalTrace(kind workload.Kind, opts Options) (trace.Trace, error) {
	cfg := trace.DefaultBurstConfig(kind)
	cfg.Seed = opts.Seed
	cfg.N = opts.scaled(cfg.N)
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		return trace.Trace{}, err
	}
	if kind == workload.IO {
		tr = tr.Head(cfg.N / 2)
	}
	return tr, nil
}

// runPolicies evaluates all four policies on one trace at one interval,
// deriving Kraken's SLOs from the Vanilla run (§IV).
func runPolicies(tr trace.Trace, interval time.Duration, seed int64, slo map[string]time.Duration) (map[PolicyKind]*Result, map[string]time.Duration, error) {
	if slo == nil {
		derived, err := SLOFromVanilla(Config{Policy: PolicyKraken, Trace: tr, Seed: seed, Interval: interval})
		if err != nil {
			return nil, nil, err
		}
		slo = derived
	}
	out := make(map[PolicyKind]*Result, len(AllPolicies))
	for _, p := range AllPolicies {
		res, err := Run(Config{Policy: p, Trace: tr, Seed: seed, Interval: interval, SLO: slo})
		if err != nil {
			return nil, nil, fmt.Errorf("run %v: %w", p, err)
		}
		out[p] = res
	}
	return out, slo, nil
}

// latencyTables prints the Fig. 11/12 component CDFs.
func latencyTables(w io.Writer, caption string, results map[PolicyKind]*Result) error {
	components := []struct {
		label string
		comp  metrics.Component
	}{
		{"(a) scheduling latency", metrics.Scheduling},
		{"(b) cold-start latency", metrics.ColdStart},
		{"(c) execution latency", metrics.Execution},
	}
	for _, c := range components {
		tbl := metrics.NewTable(
			fmt.Sprintf("%s %s", caption, c.label),
			"percentile", "vanilla", "sfs", "kraken", "faasbatch")
		cdfs := map[PolicyKind]metrics.CDF{}
		for _, p := range AllPolicies {
			cdfs[p] = results[p].CDF(c.comp)
		}
		for _, q := range latencyPercentiles {
			tbl.AddRow(
				fmt.Sprintf("p%02.0f", q*100),
				cdfs[PolicyVanilla].P(q).Round(time.Millisecond),
				cdfs[PolicySFS].P(q).Round(time.Millisecond),
				cdfs[PolicyKraken].P(q).Round(time.Millisecond),
				cdfs[PolicyFaaSBatch].P(q).Round(time.Millisecond),
			)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := plotPolicies(w, fmt.Sprintf("%s %s (CDF, log x-axis)", caption, c.label), cdfs); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	// Kraken's distinguishing curve: execution + queuing.
	tbl := metrics.NewTable(
		fmt.Sprintf("%s (c') Kraken: Exec+Queue vs others' execution", caption),
		"percentile", "kraken exec+queue", "vanilla exec", "faasbatch exec")
	kq := results[PolicyKraken].CDF(metrics.ExecPlusQueue)
	ve := results[PolicyVanilla].CDF(metrics.Execution)
	fe := results[PolicyFaaSBatch].CDF(metrics.Execution)
	for _, q := range latencyPercentiles {
		tbl.AddRow(fmt.Sprintf("p%02.0f", q*100),
			kq.P(q).Round(time.Millisecond), ve.P(q).Round(time.Millisecond), fe.P(q).Round(time.Millisecond))
	}
	return tbl.Render(w)
}

// plotPolicies renders the four policies' curves as an ASCII CDF chart.
func plotPolicies(w io.Writer, title string, cdfs map[PolicyKind]metrics.CDF) error {
	named := map[string]metrics.CDF{}
	order := make([]string, 0, len(AllPolicies))
	for _, p := range AllPolicies {
		named[p.String()] = cdfs[p]
		order = append(order, p.String())
	}
	return metrics.PlotCDFs(w, title, order, named)
}

// RunFig11 reproduces the CPU-intensive latency CDFs.
func RunFig11(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.CPUIntensive, opts)
	if err != nil {
		return err
	}
	results, _, err := runPolicies(tr, 200*time.Millisecond, opts.Seed, nil)
	if err != nil {
		return err
	}
	return latencyTables(w, "Fig. 11 — CPU-intensive functions:", results)
}

// RunFig12 reproduces the I/O latency CDFs.
func RunFig12(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.IO, opts)
	if err != nil {
		return err
	}
	results, _, err := runPolicies(tr, 200*time.Millisecond, opts.Seed, nil)
	if err != nil {
		return err
	}
	return latencyTables(w, "Fig. 12 — I/O functions:", results)
}

// sweep runs every policy across the dispatch-interval sweep.
func sweep(kind workload.Kind, opts Options) (map[time.Duration]map[PolicyKind]*Result, error) {
	tr, err := evalTrace(kind, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[time.Duration]map[PolicyKind]*Result, len(SweepIntervals))
	var slo map[string]time.Duration
	for _, interval := range SweepIntervals {
		results, derived, err := runPolicies(tr, interval, opts.Seed, slo)
		if err != nil {
			return nil, err
		}
		slo = derived
		out[interval] = results
	}
	return out, nil
}

// sweepTables prints the Fig. 13/14 resource-cost tables.
func sweepTables(w io.Writer, caption string, results map[time.Duration]map[PolicyKind]*Result, withClients bool) error {
	type column struct {
		label string
		value func(*Result) any
	}
	tables := []struct {
		label string
		value func(*Result) any
	}{
		{"(a) average system memory (GB)", func(r *Result) any { return metrics.GiB(int64(r.AvgMemBytes)) }},
		{"(b) provisioned containers", func(r *Result) any { return r.TotalContainers }},
		{"(c) CPU utilisation (%)", func(r *Result) any { return r.CPUUtil * 100 }},
	}
	if withClients {
		tables = append(tables, column{
			"(d) client memory per invocation (MB)",
			func(r *Result) any { return metrics.MiB(int64(r.ClientMemPerInvocation)) },
		})
	}
	for _, tspec := range tables {
		tbl := metrics.NewTable(
			fmt.Sprintf("%s %s", caption, tspec.label),
			"interval", "vanilla", "sfs", "kraken", "faasbatch")
		for _, interval := range SweepIntervals {
			row := results[interval]
			tbl.AddRow(interval,
				tspec.value(row[PolicyVanilla]),
				tspec.value(row[PolicySFS]),
				tspec.value(row[PolicyKraken]),
				tspec.value(row[PolicyFaaSBatch]),
			)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RunFig13 reproduces the CPU-intensive resource-cost sweep.
func RunFig13(w io.Writer, opts Options) error {
	results, err := sweep(workload.CPUIntensive, opts)
	if err != nil {
		return err
	}
	return sweepTables(w, "Fig. 13 — CPU-intensive functions:", results, false)
}

// RunFig14 reproduces the I/O resource-cost sweep, including the
// per-client memory footprint (d).
func RunFig14(w io.Writer, opts Options) error {
	results, err := sweep(workload.IO, opts)
	if err != nil {
		return err
	}
	return sweepTables(w, "Fig. 14 — I/O functions:", results, true)
}

// reduction reports the percentage reduction of got versus base.
func reduction(base, got float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - got) / base * 100
}

// RunHeadline compares the paper's §V headline claims with measured
// values from the I/O workload (latency at the default interval, resource
// aggregates across the interval sweep).
func RunHeadline(w io.Writer, opts Options) error {
	results, err := sweep(workload.IO, opts)
	if err != nil {
		return err
	}
	def := results[200*time.Millisecond]

	// Latency reductions: the paper's "up to" is the largest cut across
	// the CDF, so take the max reduction over the printed percentiles.
	maxCut := func(base PolicyKind) float64 {
		bc := def[base].CDF(metrics.EndToEnd)
		fc := def[PolicyFaaSBatch].CDF(metrics.EndToEnd)
		best := 0.0
		for _, q := range latencyPercentiles {
			cut := reduction(float64(bc.P(q)), float64(fc.P(q)))
			if cut > best {
				best = cut
			}
		}
		return best
	}

	// Resource aggregates across the sweep (the paper's "on average ...
	// with respect to different dispatch intervals").
	avg := func(f func(*Result) float64) map[PolicyKind]float64 {
		out := map[PolicyKind]float64{}
		for _, p := range AllPolicies {
			sum := 0.0
			for _, interval := range SweepIntervals {
				sum += f(results[interval][p])
			}
			out[p] = sum / float64(len(SweepIntervals))
		}
		return out
	}
	containers := avg(func(r *Result) float64 { return float64(r.TotalContainers) })
	clientMB := avg(func(r *Result) float64 { return r.ClientMemPerInvocation / (1 << 20) })
	invocations := float64(len(def[PolicyFaaSBatch].Records))

	// Per-interval reduction ranges, the paper's "X% to Y%" phrasing.
	cutRange := func(base PolicyKind, f func(*Result) float64) string {
		lo, hi := 100.0, -100.0
		for _, interval := range SweepIntervals {
			cut := reduction(f(results[interval][base]), f(results[interval][PolicyFaaSBatch]))
			if cut < lo {
				lo = cut
			}
			if cut > hi {
				hi = cut
			}
		}
		return fmt.Sprintf("%.2f%% to %.2f%%", lo, hi)
	}
	cpuOf := func(r *Result) float64 { return r.CPUUtil }
	memOf := func(r *Result) float64 { return r.AvgMemBytes }

	tbl := metrics.NewTable(
		"§V headline — paper-reported vs measured (I/O workload)",
		"metric", "paper", "measured")
	tbl.AddRow("latency cut vs Vanilla", "up to 92.18%", fmt.Sprintf("up to %.2f%%", maxCut(PolicyVanilla)))
	tbl.AddRow("latency cut vs SFS", "up to 89.54%", fmt.Sprintf("up to %.2f%%", maxCut(PolicySFS)))
	tbl.AddRow("latency cut vs Kraken", "up to 90.65%", fmt.Sprintf("up to %.2f%%", maxCut(PolicyKraken)))
	tbl.AddRow("avg containers, Vanilla", "266.25", fmt.Sprintf("%.2f", containers[PolicyVanilla]))
	tbl.AddRow("avg containers, SFS", "273.25", fmt.Sprintf("%.2f", containers[PolicySFS]))
	tbl.AddRow("avg containers, Kraken", "76", fmt.Sprintf("%.2f", containers[PolicyKraken]))
	tbl.AddRow("avg containers, FaaSBatch", "16.5", fmt.Sprintf("%.2f", containers[PolicyFaaSBatch]))
	tbl.AddRow("invocations per FaaSBatch container", "24.39", fmt.Sprintf("%.2f", invocations/containers[PolicyFaaSBatch]))
	tbl.AddRow("container cut vs Vanilla", "93.80%", fmt.Sprintf("%.2f%%", reduction(containers[PolicyVanilla], containers[PolicyFaaSBatch])))
	tbl.AddRow("container cut vs SFS", "93.96%", fmt.Sprintf("%.2f%%", reduction(containers[PolicySFS], containers[PolicyFaaSBatch])))
	tbl.AddRow("container cut vs Kraken", "78.28%", fmt.Sprintf("%.2f%%", reduction(containers[PolicyKraken], containers[PolicyFaaSBatch])))
	tbl.AddRow("CPU util cut vs Vanilla", "81.39% to 91.15%", cutRange(PolicyVanilla, cpuOf))
	tbl.AddRow("CPU util cut vs SFS", "79.89% to 90.33%", cutRange(PolicySFS, cpuOf))
	tbl.AddRow("CPU util cut vs Kraken", "84.76% to 93.12%", cutRange(PolicyKraken, cpuOf))
	tbl.AddRow("memory cut vs Vanilla", "69.72% to 90.39%", cutRange(PolicyVanilla, memOf))
	tbl.AddRow("client memory per invocation, baselines", "~15 MB", fmt.Sprintf("%.2f MB", clientMB[PolicyVanilla]))
	tbl.AddRow("client memory per invocation, FaaSBatch", "0.87 MB", fmt.Sprintf("%.2f MB", clientMB[PolicyFaaSBatch]))
	return tbl.Render(w)
}
