package experiment

import (
	"strings"
	"testing"

	"faasbatch/internal/workload"
)

// tinyOptions keeps figure runs fast in tests.
var tinyOptions = Options{Scale: 0.05, Seed: 13}

func TestFiguresRegistryComplete(t *testing.T) {
	figs := Figures()
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "headline", "ablation-multiplex", "ablation-keepalive", "ablation-burstiness", "sensitivity", "ext-faults", "ext-cluster", "ext-prewarm", "ext-chains"}
	if len(figs) != len(want) {
		t.Fatalf("registry has %d figures, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, figs[i].ID, id)
		}
		if figs[i].Title == "" || figs[i].Run == nil {
			t.Errorf("figure %q incomplete", figs[i].ID)
		}
	}
}

func TestFigureByID(t *testing.T) {
	if _, ok := FigureByID("fig11"); !ok {
		t.Error("fig11 not found")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Error("unknown figure found")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Scale != 1.0 || o.Seed != 13 {
		t.Fatalf("DefaultOptions = %+v", o)
	}
	if o.scaled(100) != 100 {
		t.Errorf("scaled(100) = %d at scale 1", o.scaled(100))
	}
	small := Options{Scale: 0.001}
	if small.scaled(100) != 1 {
		t.Errorf("scaled floor broken: %d", small.scaled(100))
	}
}

// runFig runs one figure at tiny scale and returns its output.
func runFig(t *testing.T, id string) string {
	t.Helper()
	fig, ok := FigureByID(id)
	if !ok {
		t.Fatalf("figure %q missing", id)
	}
	var b strings.Builder
	if err := fig.Run(&b, tinyOptions); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return b.String()
}

func TestFig1OutputsRatiosNearOne(t *testing.T) {
	out := runFig(t, "fig1")
	if !strings.Contains(out, "sharing/monopoly") {
		t.Fatalf("fig1 output missing ratio column:\n%s", out)
	}
	// Every data row's ratio must be ~1.000 (the motivation result).
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] == "concurrency" || strings.HasPrefix(fields[0], "-") {
			continue
		}
		if !strings.HasPrefix(fields[3], "1.00") && !strings.HasPrefix(fields[3], "0.99") {
			t.Errorf("fig1 ratio %q not ~1.0 in line %q", fields[3], line)
		}
	}
}

func TestFig2OutputsThreeHotFunctions(t *testing.T) {
	out := runFig(t, "fig2")
	for _, fn := range []string{"hotA", "hotB", "hotC"} {
		if !strings.Contains(out, fn) {
			t.Errorf("fig2 missing %s:\n%s", fn, out)
		}
	}
}

func TestFig3OutputsMergedCDF(t *testing.T) {
	out := runFig(t, "fig3")
	if !strings.Contains(out, "100ms") || !strings.Contains(out, "merged CDF") {
		t.Fatalf("fig3 output malformed:\n%s", out)
	}
}

func TestFig4OutputsContentionBlowup(t *testing.T) {
	out := runFig(t, "fig4")
	if !strings.Contains(out, "66ms") {
		t.Errorf("fig4 missing the 66ms base point:\n%s", out)
	}
	// The k=9 row must show a large multiple.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "9" {
			found = true
			if !strings.HasPrefix(fields[2], "4") && !strings.HasPrefix(fields[2], "5") {
				t.Errorf("fig4 k=9 multiple = %s, want ~49x", fields[2])
			}
		}
	}
	if !found {
		t.Fatalf("fig4 missing k=9 row:\n%s", out)
	}
}

func TestFig5OutputsMemoryGrowth(t *testing.T) {
	out := runFig(t, "fig5")
	if !strings.Contains(out, "9.000") {
		t.Errorf("fig5 missing the 9 MB base point:\n%s", out)
	}
	if !strings.Contains(out, "59.000") {
		t.Errorf("fig5 missing the ~59 MB k=9 point:\n%s", out)
	}
}

func TestFig9MatchesPaperWeights(t *testing.T) {
	out := runFig(t, "fig9")
	for _, want := range []string{"0.551", "[0s, 50ms)", "[1.55s, inf)"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 missing %q:\n%s", want, out)
		}
	}
}

func TestFig10OutputsPerSecondCounts(t *testing.T) {
	out := runFig(t, "fig10")
	if !strings.Contains(out, "second") || !strings.Contains(out, "peak") {
		t.Fatalf("fig10 malformed:\n%s", out)
	}
}

func TestFig11And12OutputAllPolicies(t *testing.T) {
	for _, id := range []string{"fig11", "fig12"} {
		out := runFig(t, id)
		for _, p := range []string{"vanilla", "sfs", "kraken", "faasbatch"} {
			if !strings.Contains(out, p) {
				t.Errorf("%s missing policy %s", id, p)
			}
		}
		for _, section := range []string{"scheduling latency", "cold-start latency", "execution latency", "Exec+Queue"} {
			if !strings.Contains(out, section) {
				t.Errorf("%s missing section %q", id, section)
			}
		}
	}
}

func TestFig13And14OutputSweepTables(t *testing.T) {
	for _, id := range []string{"fig13", "fig14"} {
		out := runFig(t, id)
		for _, interval := range SweepIntervals {
			if !strings.Contains(out, interval.String()) {
				t.Errorf("%s missing interval %v", id, interval)
			}
		}
		for _, section := range []string{"system memory", "provisioned containers", "CPU utilisation"} {
			if !strings.Contains(out, section) {
				t.Errorf("%s missing section %q", id, section)
			}
		}
	}
	if out := runFig(t, "fig14"); !strings.Contains(out, "client memory per invocation") {
		t.Error("fig14 missing the (d) panel")
	}
}

func TestHeadlineOutputsPaperVsMeasured(t *testing.T) {
	out := runFig(t, "headline")
	for _, want := range []string{"92.18%", "266.25", "16.5", "0.87 MB", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q:\n%s", want, out)
		}
	}
}

func TestSweepCoversEveryIntervalAndPolicy(t *testing.T) {
	results, err := sweep(workload.IO, tinyOptions)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(results) != len(SweepIntervals) {
		t.Fatalf("sweep covered %d intervals, want %d", len(results), len(SweepIntervals))
	}
	for _, interval := range SweepIntervals {
		for _, p := range AllPolicies {
			if results[interval][p] == nil {
				t.Fatalf("no %v result at %v", p, interval)
			}
		}
	}
}

func TestReduction(t *testing.T) {
	if got := reduction(100, 25); got != 75 {
		t.Errorf("reduction(100,25) = %v", got)
	}
	if got := reduction(0, 5); got != 0 {
		t.Errorf("reduction(0,5) = %v, want 0", got)
	}
	if got := reduction(50, 100); got != -100 {
		t.Errorf("reduction(50,100) = %v", got)
	}
}

func TestEvalTraceShapes(t *testing.T) {
	cpu, err := evalTrace(workload.CPUIntensive, Options{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("cpu evalTrace: %v", err)
	}
	if cpu.Len() != 80 {
		t.Errorf("cpu trace len = %d, want 80 at scale 0.1", cpu.Len())
	}
	io, err := evalTrace(workload.IO, Options{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("io evalTrace: %v", err)
	}
	if io.Len() != 40 {
		t.Errorf("io trace len = %d, want 40 (half of the cpu count)", io.Len())
	}
}

func TestAblationMultiplexOutput(t *testing.T) {
	out := runFig(t, "ablation-multiplex")
	for _, want := range []string{"faasbatch (full)", "faasbatch (no multiplexer)", "vanilla", "clients built"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionClusterOutput(t *testing.T) {
	out := runFig(t, "ext-cluster")
	for _, want := range []string{"nodes", "fn-affinity", "least-loaded", "round-robin", "imbalance"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-cluster missing %q:\n%s", want, out)
		}
	}
}

func TestAblationBurstinessOutput(t *testing.T) {
	out := runFig(t, "ablation-burstiness")
	for _, want := range []string{"bursty (paper replay)", "steady (Poisson, same volume)", "inv/container"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-burstiness missing %q:\n%s", want, out)
		}
	}
}

func TestAblationKeepAliveOutput(t *testing.T) {
	out := runFig(t, "ablation-keepalive")
	for _, want := range []string{"keep-alive", "evictions", "vanilla", "faasbatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-keepalive missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityOutputAllOrderingsHold(t *testing.T) {
	out := runFig(t, "sensitivity")
	if strings.Contains(out, "false") {
		t.Fatalf("a calibration perturbation flipped a headline ordering:\n%s", out)
	}
	for _, want := range []string{"CreateCPUWork", "ContainerInitCPUWork", "orderings hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("sensitivity missing %q", want)
		}
	}
}

func TestSummarizeWorkload(t *testing.T) {
	sums, err := SummarizeWorkload("io", tinyOptions)
	if err != nil {
		t.Fatalf("SummarizeWorkload: %v", err)
	}
	if len(sums) != 4 {
		t.Fatalf("got %d summaries", len(sums))
	}
	for _, s := range sums {
		if s.Invocations == 0 || s.Containers == 0 || s.TotalP50Millis <= 0 {
			t.Fatalf("empty summary: %+v", s)
		}
		if s.Workload != "io" {
			t.Fatalf("workload = %q", s.Workload)
		}
	}
	if _, err := SummarizeWorkload("bogus", tinyOptions); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestExtensionPrewarmOutput(t *testing.T) {
	out := runFig(t, "ext-prewarm")
	for _, want := range []string{"faasbatch + prewarm", "touches", "cold invocations"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-prewarm missing %q:\n%s", want, out)
		}
	}
}
