package experiment

import (
	"fmt"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/workload"
)

// Summary is a flat, JSON-friendly digest of one evaluation run, for
// scripting around cmd/faasbench (-summary).
type Summary struct {
	// Policy names the scheduler.
	Policy string `json:"policy"`
	// Workload is "cpu" or "io".
	Workload string `json:"workload"`
	// Invocations is the replayed invocation count.
	Invocations int `json:"invocations"`
	// Containers is the number provisioned.
	Containers int `json:"containers"`
	// ColdStarts and WarmStarts split acquisitions.
	ColdStarts int `json:"coldStarts"`
	WarmStarts int `json:"warmStarts"`
	// SchedP50Millis .. TotalP99Millis summarise the latency CDFs.
	SchedP50Millis float64 `json:"schedP50Millis"`
	SchedP99Millis float64 `json:"schedP99Millis"`
	ColdP99Millis  float64 `json:"coldP99Millis"`
	ExecP50Millis  float64 `json:"execP50Millis"`
	ExecP99Millis  float64 `json:"execP99Millis"`
	TotalP50Millis float64 `json:"totalP50Millis"`
	TotalP99Millis float64 `json:"totalP99Millis"`
	// AvgMemMB is the time-averaged node memory.
	AvgMemMB float64 `json:"avgMemMB"`
	// CPUUtilPercent is mean CPU utilisation.
	CPUUtilPercent float64 `json:"cpuUtilPercent"`
	// ClientMemPerInvocationMB is the Fig. 14d metric.
	ClientMemPerInvocationMB float64 `json:"clientMemPerInvocationMB"`
	// MakespanMillis is the completion time of the last invocation.
	MakespanMillis float64 `json:"makespanMillis"`
}

// Summarize digests a Result.
func Summarize(res *Result, workloadName string) Summary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	sched := res.CDF(metrics.Scheduling)
	cold := res.CDF(metrics.ColdStart)
	exec := res.CDF(metrics.Execution)
	tot := res.CDF(metrics.EndToEnd)
	return Summary{
		Policy:                   res.Policy,
		Workload:                 workloadName,
		Invocations:              len(res.Records),
		Containers:               res.TotalContainers,
		ColdStarts:               res.ColdStarts,
		WarmStarts:               res.WarmStarts,
		SchedP50Millis:           ms(sched.P(0.5)),
		SchedP99Millis:           ms(sched.P(0.99)),
		ColdP99Millis:            ms(cold.P(0.99)),
		ExecP50Millis:            ms(exec.P(0.5)),
		ExecP99Millis:            ms(exec.P(0.99)),
		TotalP50Millis:           ms(tot.P(0.5)),
		TotalP99Millis:           ms(tot.P(0.99)),
		AvgMemMB:                 res.AvgMemBytes / (1 << 20),
		CPUUtilPercent:           res.CPUUtil * 100,
		ClientMemPerInvocationMB: res.ClientMemPerInvocation / (1 << 20),
		MakespanMillis:           ms(res.Makespan),
	}
}

// SummarizeWorkload runs all four policies on the named workload ("cpu"
// or "io") and returns their summaries, sharing the derived Kraken SLOs.
func SummarizeWorkload(workloadName string, opts Options) ([]Summary, error) {
	var kind workload.Kind
	switch workloadName {
	case "cpu":
		kind = workload.CPUIntensive
	case "io":
		kind = workload.IO
	default:
		return nil, fmt.Errorf("experiment: unknown workload %q (cpu or io)", workloadName)
	}
	tr, err := evalTrace(kind, opts)
	if err != nil {
		return nil, err
	}
	results, _, err := runPolicies(tr, 200*time.Millisecond, opts.Seed, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Summary, 0, len(AllPolicies))
	for _, p := range AllPolicies {
		out = append(out, Summarize(results[p], workloadName))
	}
	return out, nil
}
