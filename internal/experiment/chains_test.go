package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRunChainValidation(t *testing.T) {
	tr := smallCPUTrace(t, 5)
	if _, err := RunChain(ChainConfig{Policy: PolicyVanilla, Trace: tr, Stages: 0}); err == nil {
		t.Error("zero stages accepted")
	}
	if _, err := RunChain(ChainConfig{Policy: PolicyVanilla, Stages: 1}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRunChainSingleStageMatchesStageCount(t *testing.T) {
	tr := smallCPUTrace(t, 30)
	res, err := RunChain(ChainConfig{Policy: PolicyFaaSBatch, Trace: tr, Stages: 1, Seed: 1})
	if err != nil {
		t.Fatalf("RunChain: %v", err)
	}
	if len(res.Chains) != tr.Len() {
		t.Fatalf("chains = %d, want %d", len(res.Chains), tr.Len())
	}
	for _, ch := range res.Chains {
		if len(ch.Stages) != 1 {
			t.Fatalf("chain %d has %d stages", ch.Head, len(ch.Stages))
		}
		if ch.Total <= 0 {
			t.Fatalf("chain %d total = %v", ch.Head, ch.Total)
		}
	}
}

func TestRunChainStagesAreSequential(t *testing.T) {
	tr := smallCPUTrace(t, 20)
	res, err := RunChain(ChainConfig{Policy: PolicyVanilla, Trace: tr, Stages: 3, Seed: 1})
	if err != nil {
		t.Fatalf("RunChain: %v", err)
	}
	for _, ch := range res.Chains {
		if len(ch.Stages) != 3 {
			t.Fatalf("chain %d has %d stages, want 3", ch.Head, len(ch.Stages))
		}
		// Stage arrivals are ordered and the chain total covers at least
		// the sum of stage latencies.
		var sum time.Duration
		for i, st := range ch.Stages {
			sum += st.Total()
			if i > 0 && st.Arrive < ch.Stages[i-1].Arrive {
				t.Fatalf("chain %d stage %d arrived before its predecessor", ch.Head, i)
			}
		}
		diff := ch.Total - sum
		if diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("chain %d total %v != stage sum %v", ch.Head, ch.Total, sum)
		}
	}
}

func TestRunChainStageIdentitiesDistinct(t *testing.T) {
	tr := smallCPUTrace(t, 10)
	res, err := RunChain(ChainConfig{Policy: PolicyFaaSBatch, Trace: tr, Stages: 2, Seed: 1})
	if err != nil {
		t.Fatalf("RunChain: %v", err)
	}
	for _, ch := range res.Chains {
		if ch.Stages[0].Fn == ch.Stages[1].Fn {
			t.Fatalf("stage functions identical: %q", ch.Stages[0].Fn)
		}
		if !strings.HasSuffix(ch.Stages[0].Fn, "#s1") || !strings.HasSuffix(ch.Stages[1].Fn, "#s2") {
			t.Fatalf("stage naming wrong: %q / %q", ch.Stages[0].Fn, ch.Stages[1].Fn)
		}
	}
}

func TestRunChainFaaSBatchBeatsVanillaOnBurstyChains(t *testing.T) {
	tr := smallCPUTrace(t, 60)
	fb, err := RunChain(ChainConfig{Policy: PolicyFaaSBatch, Trace: tr, Stages: 3, Seed: 1})
	if err != nil {
		t.Fatalf("faasbatch: %v", err)
	}
	va, err := RunChain(ChainConfig{Policy: PolicyVanilla, Trace: tr, Stages: 3, Seed: 1})
	if err != nil {
		t.Fatalf("vanilla: %v", err)
	}
	if fb.TotalContainers >= va.TotalContainers {
		t.Errorf("faasbatch containers %d not fewer than vanilla %d", fb.TotalContainers, va.TotalContainers)
	}
	if fb.TotalCDF().P(0.5) >= va.TotalCDF().P(0.5) {
		t.Errorf("faasbatch chain p50 %v not better than vanilla %v",
			fb.TotalCDF().P(0.5), va.TotalCDF().P(0.5))
	}
}

func TestRunChainKrakenDerivesStageSLOs(t *testing.T) {
	tr := smallCPUTrace(t, 20)
	res, err := RunChain(ChainConfig{Policy: PolicyKraken, Trace: tr, Stages: 2, Seed: 1})
	if err != nil {
		t.Fatalf("kraken chains: %v", err)
	}
	if len(res.Chains) != tr.Len() {
		t.Fatalf("chains = %d, want %d", len(res.Chains), tr.Len())
	}
}

func TestExtensionChainsOutput(t *testing.T) {
	out := runFig(t, "ext-chains")
	for _, want := range []string{"1-stage", "3-stage", "5-stage", "chain p99", "faasbatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-chains missing %q:\n%s", want, out)
		}
	}
}
