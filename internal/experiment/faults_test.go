package experiment

import (
	"fmt"
	"testing"

	"faasbatch/internal/chaos"
	"faasbatch/internal/workload"
)

// TestFaultSweepFullScaleCompletes is the regression test for a lost
// invocation under crash injection at full evaluation scale: a container
// crash tearing down mid-client-build dropped the multiplexer's coalesced
// waiters, stranding their invocations and spinning the drive loop
// forever. Every swept rate must account for the whole trace.
func TestFaultSweepFullScaleCompletes(t *testing.T) {
	tr, err := evalTrace(workload.IO, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0, 0.02, 0.05, 0.10} {
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			cfg := Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 13}
			if rate > 0 {
				cfg.Chaos = &chaos.Config{Rates: map[chaos.Kind]float64{
					chaos.BootFailure:    rate,
					chaos.ContainerCrash: rate,
					chaos.SlowColdStart:  rate,
				}}
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Records) != tr.Len() {
				t.Fatalf("%d/%d invocations accounted for", len(res.Records), tr.Len())
			}
			if rate == 0 && (res.Retries != 0 || res.Failures != 0) {
				t.Errorf("fault-free run saw retries=%d failures=%d", res.Retries, res.Failures)
			}
		})
	}
}
