package experiment

import (
	"fmt"
	"io"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/metrics"
	"faasbatch/internal/workload"
)

// RunFaultSweep measures degradation under injected faults: the I/O
// workload replayed under PolicyVanilla and PolicyFaaSBatch while every
// node/runner fault kind (boot failures, mid-batch container crashes,
// inflated cold starts) fires at a swept rate. The paper's Inline-Parallel
// Producer maps a whole window group onto one container (§III-C), so one
// crash takes out an entire batch — a blast radius Vanilla's
// one-container-per-invocation model never had. This sweep makes that
// trade visible: how much latency FaaSBatch's re-batching retry path
// gives back at each fault rate, and whether anything is ever lost
// (completed + failed must equal the trace length; failures appear only
// when the bounded retry budget is truly exhausted).
//
// Fault injection is seeded off the run seed: the same seed reproduces
// the same fault schedule, making the degradation figure deterministic.
func RunFaultSweep(w io.Writer, opts Options) error {
	tr, err := evalTrace(workload.IO, opts)
	if err != nil {
		return err
	}
	rates := []float64{0, 0.02, 0.05, 0.10}
	tbl := metrics.NewTable(
		"Fault sweep — degradation under injected container faults (I/O workload)",
		"policy", "fault rate", "completed", "failed", "retries", "crashes", "boot fails",
		"total p50", "total p90", "containers")
	for _, p := range []PolicyKind{PolicyVanilla, PolicyFaaSBatch} {
		for _, rate := range rates {
			cfg := Config{Policy: p, Trace: tr, Seed: opts.Seed}
			if rate > 0 {
				cfg.Chaos = &chaos.Config{
					Rates: map[chaos.Kind]float64{
						chaos.BootFailure:    rate,
						chaos.ContainerCrash: rate,
						chaos.SlowColdStart:  rate,
					},
				}
			}
			res, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("fault sweep %v @ %.0f%%: %w", p, rate*100, err)
			}
			if len(res.Records) != tr.Len() {
				return fmt.Errorf("fault sweep %v @ %.0f%%: %d/%d invocations accounted for",
					p, rate*100, len(res.Records), tr.Len())
			}
			tot := res.CDF(metrics.EndToEnd)
			tbl.AddRow(p.String(), fmt.Sprintf("%.0f%%", rate*100),
				len(res.Records)-res.Failures, res.Failures, res.Retries,
				res.Crashes, res.BootFailures,
				tot.P(0.5).Round(time.Millisecond), tot.P(0.9).Round(time.Millisecond),
				res.TotalContainers)
		}
	}
	return tbl.Render(w)
}
