package experiment

import (
	"fmt"
	"io"
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// ChainConfig describes a chained-function workload: every trace arrival
// triggers a sequential chain of function invocations (stage k+1 is
// submitted when stage k completes), the microservice-workflow setting
// the original Kraken targets.
type ChainConfig struct {
	// Policy is the scheduler under test.
	Policy PolicyKind
	// Trace supplies the chain heads (arrival times and base functions).
	Trace trace.Trace
	// Stages is the chain length (>= 1).
	Stages int
	// Seed drives the simulation.
	Seed int64
	// Interval is the dispatch/provisioning window.
	Interval time.Duration
	// SLO supplies Kraken's objectives (nil derives p98 from a Vanilla
	// chain pre-run's stage latencies).
	SLO map[string]time.Duration
}

// ChainRecord is one completed chain.
type ChainRecord struct {
	// Head identifies the chain (the trace invocation index).
	Head int64
	// Total is the head-arrival-to-last-stage-completion latency.
	Total time.Duration
	// Stages holds each stage's latency decomposition.
	Stages []metrics.Record
}

// ChainResult aggregates a chain replay.
type ChainResult struct {
	// Policy names the scheduler that ran.
	Policy string
	// Stages echoes the configured chain length.
	Stages int
	// Chains holds one record per completed chain.
	Chains []ChainRecord
	// TotalContainers counts containers provisioned.
	TotalContainers int
	// Makespan is the completion time of the last chain.
	Makespan time.Duration
}

// TotalCDF returns the distribution of end-to-end chain latencies.
func (r *ChainResult) TotalCDF() metrics.CDF {
	vals := make([]time.Duration, len(r.Chains))
	for i, c := range r.Chains {
		vals[i] = c.Total
	}
	return metrics.NewCDF(vals)
}

// stageSpec derives stage k's function spec from the head spec: the same
// body under a per-stage function identity, so every stage forms its own
// groups.
func stageSpec(head workload.Spec, k int) workload.Spec {
	s := head
	s.Name = fmt.Sprintf("%s#s%d", head.Name, k+1)
	return s
}

// RunChain executes the chained workload to completion.
func RunChain(cfg ChainConfig) (*ChainResult, error) {
	if cfg.Stages < 1 {
		return nil, fmt.Errorf("experiment: chain stages must be >= 1, got %d", cfg.Stages)
	}
	base := Config{
		Policy:   cfg.Policy,
		Trace:    cfg.Trace,
		Interval: cfg.Interval,
		Seed:     cfg.Seed,
		SLO:      cfg.SLO,
	}
	if err := base.normalise(); err != nil {
		return nil, err
	}
	if cfg.Policy == PolicyKraken && base.SLO == nil {
		// Derive stage SLOs from a Vanilla chain pre-run.
		pre, err := RunChain(ChainConfig{
			Policy:   PolicyVanilla,
			Trace:    cfg.Trace,
			Stages:   cfg.Stages,
			Seed:     cfg.Seed,
			Interval: cfg.Interval,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: derive chain SLOs: %w", err)
		}
		perFn := map[string][]time.Duration{}
		for _, ch := range pre.Chains {
			for _, st := range ch.Stages {
				perFn[st.Fn] = append(perFn[st.Fn], st.Total())
			}
		}
		base.SLO = make(map[string]time.Duration, len(perFn))
		for fn, lats := range perFn {
			base.SLO[fn] = metrics.NewCDF(lats).P(0.98)
		}
	}

	eng := sim.New(base.Seed)
	nd, _, sched, _, err := buildScheduler(eng, base, nil)
	if err != nil {
		return nil, err
	}
	specs, err := SpecsFor(base.Trace)
	if err != nil {
		return nil, err
	}

	res := &ChainResult{Policy: sched.Name(), Stages: cfg.Stages}
	total := base.Trace.Len()
	done := 0
	var nextID int64
	for i, inv := range base.Trace.Invocations {
		i := i
		head := specs[i]
		eng.Schedule(inv.Offset, func() {
			rec := ChainRecord{Head: int64(i)}
			start := eng.Now()
			var runStage func(k int)
			runStage = func(k int) {
				nextID++
				fi := fnruntime.NewInvocation(nextID, stageSpec(head, k), eng.Now())
				sched.Submit(fi, func(fin *fnruntime.Invocation) {
					rec.Stages = append(rec.Stages, fin.Rec)
					if k+1 < cfg.Stages {
						runStage(k + 1)
						return
					}
					rec.Total = eng.Now().Sub(start)
					res.Chains = append(res.Chains, rec)
					done++
				})
			}
			runStage(0)
		})
	}
	for done < total {
		if !eng.Step() {
			return nil, fmt.Errorf("experiment: engine drained with %d/%d chains complete", done, total)
		}
	}
	res.Makespan = eng.Now().Duration()
	if err := sched.Close(); err != nil {
		return nil, fmt.Errorf("experiment: close scheduler: %w", err)
	}
	res.TotalContainers = nd.TotalCreated()
	return res, nil
}

// RunExtensionChains compares the four policies on sequential function
// chains of growing length.
func RunExtensionChains(w io.Writer, opts Options) error {
	cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
	cfg.Seed = opts.Seed
	cfg.N = opts.scaled(200) // chains multiply invocations by stage count
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		return err
	}
	for _, stages := range []int{1, 3, 5} {
		tbl := metrics.NewTable(
			fmt.Sprintf("Extension — %d-stage function chains (%d chains)", stages, tr.Len()),
			"policy", "containers", "chain p50", "chain p99")
		for _, p := range AllPolicies {
			res, err := RunChain(ChainConfig{
				Policy: p,
				Trace:  tr,
				Stages: stages,
				Seed:   opts.Seed,
			})
			if err != nil {
				return fmt.Errorf("chains %v x%d: %w", p, stages, err)
			}
			cdf := res.TotalCDF()
			tbl.AddRow(res.Policy, res.TotalContainers,
				cdf.P(0.5).Round(time.Millisecond), cdf.P(0.99).Round(time.Millisecond))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
