package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"faasbatch/internal/obs"
)

// chromeEvent mirrors the fields of one exported trace event the tests
// care about.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args"`
}

func decodeChromeTrace(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var out struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	return out.TraceEvents
}

// TestTraceRoundTripSim runs a simulated experiment with tracing and
// checks that the exported Chrome trace reconstructs every record's
// four-component decomposition exactly, on the virtual timeline.
func TestTraceRoundTripSim(t *testing.T) {
	tr := smallIOTrace(t, 40)
	tracer, err := obs.NewTracer(obs.TracerConfig{
		Capacity: 4 * tr.Len(),
		Clock:    func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	res, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 3, Tracer: tracer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeChromeTrace(t, buf.Bytes())
	if len(events) != 4*len(res.Records) {
		t.Fatalf("%d events, want 4 per record (%d records)", len(events), len(res.Records))
	}

	// EmitSpans assigns trace IDs in record order, so tid i+1 is record i.
	type decomp struct {
		start, total float64
		parts        map[string]float64
	}
	perTrace := map[uint64]*decomp{}
	lastTs := -1.0
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event %q phase = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < lastTs {
			t.Fatalf("events not sorted by ts: %v after %v", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		d := perTrace[ev.Tid]
		if d == nil {
			d = &decomp{start: ev.Ts, parts: map[string]float64{}}
			perTrace[ev.Tid] = d
		}
		d.parts[ev.Name] += ev.Dur
		d.total += ev.Dur
	}
	if len(perTrace) != len(res.Records) {
		t.Fatalf("%d traces, want %d", len(perTrace), len(res.Records))
	}
	toMicros := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for i, rec := range res.Records {
		d := perTrace[uint64(i+1)]
		if d == nil {
			t.Fatalf("record %d has no trace", i)
		}
		for name, want := range map[string]time.Duration{
			obs.SpanScheduling: rec.Sched,
			obs.SpanColdStart:  rec.Cold,
			obs.SpanQueuing:    rec.Queue,
			obs.SpanExecution:  rec.Exec,
		} {
			if got := d.parts[name]; got != toMicros(want) {
				t.Errorf("record %d %s = %vµs, want %vµs", i, name, got, toMicros(want))
			}
		}
		// Summing four float64 durations picks up rounding in the last
		// bits; the individual components above compare exactly.
		if diff := d.total - toMicros(rec.Total()); math.Abs(diff) > 0.001 {
			t.Errorf("record %d total %vµs != %vµs", i, d.total, toMicros(rec.Total()))
		}
		if d.start != toMicros(rec.Arrive.Duration()) {
			t.Errorf("record %d first span at %vµs, arrived at %vµs", i, d.start, toMicros(rec.Arrive.Duration()))
		}
	}
}

// TestEmitSpansSampling checks the tracer's sampling carries through span
// emission: 1-in-3 sampling keeps a third of the records.
func TestEmitSpansSampling(t *testing.T) {
	tr := smallIOTrace(t, 30)
	tracer, err := obs.NewTracer(obs.TracerConfig{
		Capacity: 4 * tr.Len(),
		Sample:   3,
		Clock:    func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatalf("NewTracer: %v", err)
	}
	res, err := Run(Config{Policy: PolicyVanilla, Trace: tr, Seed: 5, Tracer: tracer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	traces := map[uint64]bool{}
	for _, s := range tracer.Snapshot() {
		traces[s.Trace] = true
	}
	want := len(res.Records) / 3
	if len(traces) != want {
		t.Errorf("%d traces with 1-in-3 sampling of %d records, want %d", len(traces), len(res.Records), want)
	}
}

// TestTraceDirSink checks SetTraceDir writes one valid trace file per run.
func TestTraceDirSink(t *testing.T) {
	dir := t.TempDir()
	SetTraceDir(dir)
	defer SetTraceDir("")

	tr := smallIOTrace(t, 10)
	res, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "run-*-faasbatch.trace.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("trace files = %v (err %v), want one", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	events := decodeChromeTrace(t, data)
	if len(events) != 4*len(res.Records) {
		t.Fatalf("%d events in sink file, want %d", len(events), 4*len(res.Records))
	}
}
