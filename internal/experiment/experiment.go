// Package experiment drives complete evaluation runs: it wires a trace,
// a worker node, a scheduler policy and the resource sampler into one
// deterministic simulation and aggregates the metrics the paper reports —
// latency CDFs per component, provisioned containers, memory usage, CPU
// utilisation and per-client memory footprint.
//
// The figure/table reproductions of cmd/faasbench and bench_test.go are
// registered in figures.go.
package experiment

import (
	"fmt"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/core"
	"faasbatch/internal/cpusched"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/obs"
	"faasbatch/internal/policy"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// PolicyKind selects the scheduler under test.
type PolicyKind int

// The four evaluated policies (§IV).
const (
	PolicyVanilla PolicyKind = iota + 1
	PolicySFS
	PolicyKraken
	PolicyFaaSBatch
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case PolicyVanilla:
		return "vanilla"
	case PolicySFS:
		return "sfs"
	case PolicyKraken:
		return "kraken"
	case PolicyFaaSBatch:
		return "faasbatch"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// AllPolicies lists the evaluated policies in the paper's order.
var AllPolicies = []PolicyKind{PolicyVanilla, PolicySFS, PolicyKraken, PolicyFaaSBatch}

// Config describes one evaluation run.
type Config struct {
	// Policy is the scheduler under test.
	Policy PolicyKind
	// Trace is the invocation workload.
	Trace trace.Trace
	// Interval is FaaSBatch's dispatch interval and Kraken's
	// provisioning window (the paper sweeps 0.01 s – 0.5 s).
	Interval time.Duration
	// AdaptiveDispatch replaces FaaSBatch's fixed interval with the
	// load-aware controller (core.Config.AdaptiveDispatch): idle
	// fast-path, EWMA-sized windows in [MinInterval, MaxInterval], early
	// close at MaxGroupSize.
	AdaptiveDispatch bool
	// MinInterval is the adaptive window floor (zero: core's default).
	MinInterval time.Duration
	// MaxInterval is the adaptive window cap (zero: Interval).
	MaxInterval time.Duration
	// MaxGroupSize early-closes adaptive windows at this group size
	// (zero: unbounded).
	MaxGroupSize int
	// Seed drives the simulation's random source.
	Seed int64
	// Node configures the worker VM; zero value means node.DefaultConfig.
	Node node.Config
	// DisableMultiplex turns the Resource Multiplexer off for FaaSBatch
	// (ablation).
	DisableMultiplex bool
	// Prewarm enables FaaSBatch's predictive pre-warming (extension).
	Prewarm bool
	// SLO supplies Kraken's per-function objectives. When nil, the run
	// derives them from a Vanilla pre-run (p98 per function, §IV).
	SLO map[string]time.Duration
	// KrakenMaxBatch caps Kraken's batch size. Zero selects the
	// paper-implied value per workload family: ~5 for I/O functions
	// (400 invocations / 76 containers, §V-B2) and ~30 for CPU-intensive
	// functions (where Kraken provisioned close to FaaSBatch, Fig. 13b).
	// The difference reflects Kraken's profiled execution times on the
	// authors' congested testbed, which our cleaner substrate cannot
	// derive from first principles (see DESIGN.md §7).
	KrakenMaxBatch int
	// SamplePeriod is the resource sampling period (default 1 s, as in
	// the paper).
	SamplePeriod time.Duration
	// Chaos enables seeded fault injection for the run (nil means no
	// faults — the default, leaving every existing figure bit-identical).
	// The injector seed defaults to Seed when Chaos.Seed is zero, so one
	// experiment seed fixes both arrivals and the fault schedule.
	Chaos *chaos.Config
	// ChaosSchedule reconfigures the injector's rates mid-run: at each
	// entry's virtual-time offset the rate table is swapped in place
	// (chaos.Injector.SetRates), so a run can move through quiet and
	// noisy phases — the scenario harness's per-phase chaos, available
	// to single-node experiments too. Entries must be sorted by At.
	// When Chaos is nil, a non-empty schedule starts the run with an
	// all-zero injector seeded from Seed.
	ChaosSchedule []ChaosPhase
	// Tracer, when non-nil, receives the run's invocation decomposition
	// spans on the virtual timeline (see EmitSpans). The simulation itself
	// is unaffected: spans are derived from completed records.
	Tracer *obs.Tracer
}

// ChaosPhase is one scheduled chaos reconfiguration: at offset At from
// the run's start the injector's rate table becomes Rates (absent kinds
// drop to zero).
type ChaosPhase struct {
	// At is the virtual-time offset the swap fires at.
	At time.Duration
	// Rates is the full rate table from At on.
	Rates map[chaos.Kind]float64
}

// Result aggregates one run's measurements.
type Result struct {
	// Policy names the scheduler that ran.
	Policy string
	// Interval echoes the configured dispatch interval.
	Interval time.Duration
	// Records holds one latency decomposition per invocation.
	Records []metrics.Record
	// Samples holds the once-per-second resource observations.
	Samples []metrics.Sample
	// TotalContainers is the number of containers provisioned.
	TotalContainers int
	// ColdStarts and WarmStarts split container acquisitions.
	ColdStarts, WarmStarts int
	// Evictions counts keep-alive evictions during the run.
	Evictions int
	// AvgMemBytes and PeakMemBytes summarise sampled node memory.
	AvgMemBytes  float64
	PeakMemBytes int64
	// CPUUtil is mean CPU utilisation (0..1) including container
	// background load.
	CPUUtil float64
	// ClientBytesAllocated is cumulative storage-client memory charged.
	ClientBytesAllocated int64
	// ClientMemPerInvocation is the average client memory footprint per
	// invocation (the Fig. 14d metric).
	ClientMemPerInvocation float64
	// Runner carries execution counters (clients built, cache hits).
	Runner fnruntime.Stats
	// Batch carries FaaSBatch batching stats (nil for baselines).
	Batch *core.Stats
	// Makespan is the completion time of the last invocation.
	Makespan time.Duration
	// Failures counts invocations that exhausted their retry budget
	// (zero without fault injection).
	Failures int
	// Retries counts extra scheduling attempts across all invocations.
	Retries int
	// Crashes, BootFailures and SlowBoots report injected-fault effects
	// observed at the node.
	Crashes, BootFailures, SlowBoots int
	// FaultSummary renders the injected-fault counts ("none" when chaos
	// was disabled or nothing fired).
	FaultSummary string
}

// CDF extracts a latency-component CDF from the records.
func (r *Result) CDF(c metrics.Component) metrics.CDF {
	return metrics.NewCDF(metrics.Extract(r.Records, c))
}

// normalise fills config defaults.
func (c *Config) normalise() error {
	if c.Policy < PolicyVanilla || c.Policy > PolicyFaaSBatch {
		return fmt.Errorf("experiment: unknown policy %d", int(c.Policy))
	}
	if c.Trace.Len() == 0 {
		return fmt.Errorf("experiment: trace is empty")
	}
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = time.Second
	}
	if c.Node.Cores == 0 {
		c.Node = node.DefaultConfig()
	}
	return nil
}

// Run executes one evaluation run to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.Policy == PolicyKraken && cfg.SLO == nil {
		slo, err := SLOFromVanilla(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: derive kraken SLOs: %w", err)
		}
		cfg.SLO = slo
	}

	eng := sim.New(cfg.Seed)
	var inj *chaos.Injector
	if cfg.Chaos != nil || len(cfg.ChaosSchedule) > 0 {
		ccfg := chaos.Config{Seed: cfg.Seed}
		if cfg.Chaos != nil {
			ccfg = *cfg.Chaos
			if ccfg.Seed == 0 {
				ccfg.Seed = cfg.Seed
			}
		}
		var cerr error
		inj, cerr = chaos.New(ccfg)
		if cerr != nil {
			return nil, fmt.Errorf("experiment: %w", cerr)
		}
	}
	for i, ph := range cfg.ChaosSchedule {
		if ph.At < 0 {
			return nil, fmt.Errorf("experiment: chaos schedule entry %d: negative offset %v", i, ph.At)
		}
		if i > 0 && ph.At < cfg.ChaosSchedule[i-1].At {
			return nil, fmt.Errorf("experiment: chaos schedule not sorted at entry %d", i)
		}
		// Validate the rate table up front so a bad entry fails the run
		// before any event fires, not mid-flight.
		if _, err := chaos.New(chaos.Config{Rates: ph.Rates}); err != nil {
			return nil, fmt.Errorf("experiment: chaos schedule entry %d: %w", i, err)
		}
		rates := ph.Rates
		eng.Schedule(ph.At, func() {
			// Rates were validated above; SetRates cannot fail here.
			_ = inj.SetRates(rates)
		})
	}
	nd, runner, sched, batch, err := buildScheduler(eng, cfg, inj)
	if err != nil {
		return nil, err
	}

	sampler, err := metrics.StartSampler(eng, cfg.SamplePeriod, func(t sim.Time) metrics.Sample {
		return metrics.Sample{
			T:               t,
			MemBytes:        nd.MemUsed(),
			Containers:      nd.LiveContainers(),
			BusyCoreSeconds: nd.BusyCoreSeconds(),
		}
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	res := &Result{Policy: sched.Name(), Interval: cfg.Interval}
	total := cfg.Trace.Len()
	specs, err := SpecsFor(cfg.Trace)
	if err != nil {
		return nil, err
	}
	for i, inv := range cfg.Trace.Invocations {
		i := i
		spec := specs[i]
		eng.Schedule(inv.Offset, func() {
			fi := fnruntime.NewInvocation(int64(i), spec, eng.Now())
			sched.Submit(fi, func(done *fnruntime.Invocation) {
				res.Records = append(res.Records, done.Rec)
			})
		})
	}

	for len(res.Records) < total {
		if !eng.Step() {
			return nil, fmt.Errorf("experiment: engine drained with %d/%d invocations complete", len(res.Records), total)
		}
	}
	res.Makespan = eng.Now().Duration()
	if err := sched.Close(); err != nil {
		return nil, fmt.Errorf("experiment: close scheduler: %w", err)
	}
	sampler.Stop()

	res.Samples = sampler.Samples()
	res.TotalContainers = nd.TotalCreated()
	res.ColdStarts = nd.ColdStarts()
	res.WarmStarts = nd.WarmStarts()
	res.Evictions = nd.Evictions()
	res.AvgMemBytes = sampler.AvgMemBytes()
	res.PeakMemBytes = sampler.PeakMemBytes()
	res.CPUUtil = cpuUtil(res.Samples, nd.Config().Cores)
	res.ClientBytesAllocated = nd.ClientBytesAllocated()
	if total > 0 {
		res.ClientMemPerInvocation = float64(nd.ClientBytesAllocated()) / float64(total)
	}
	res.Runner = runner.Stats()
	if batch != nil {
		st := batch.Stats()
		res.Batch = &st
	}
	for _, r := range res.Records {
		res.Retries += r.Retries
		if r.Failed {
			res.Failures++
		}
	}
	res.Crashes = nd.Crashes()
	res.BootFailures = nd.BootFailures()
	res.SlowBoots = nd.SlowBoots()
	res.FaultSummary = inj.Summary()
	if err := emitRunTrace(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// buildScheduler wires a node, runner and the configured policy's
// scheduler on the given engine, threading the optional fault injector
// through the node (boot faults) and runner (execution faults).
func buildScheduler(eng *sim.Engine, cfg Config, inj *chaos.Injector) (*node.Node, *fnruntime.Runner, policy.Scheduler, *core.FaaSBatch, error) {
	ncfg := cfg.Node
	if cfg.Policy == PolicySFS {
		ncfg.Discipline = cpusched.NewMLFQ()
	}
	ncfg.Chaos = inj
	nd, err := node.New(eng, ncfg)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("experiment: %w", err)
	}
	runner := fnruntime.NewRunner(eng)
	runner.SetChaos(inj)
	env := policy.Env{Eng: eng, Node: nd, Runner: runner}

	var (
		sched policy.Scheduler
		batch *core.FaaSBatch
	)
	switch cfg.Policy {
	case PolicyVanilla:
		sched, err = policy.NewVanilla(env)
	case PolicySFS:
		sched, err = policy.NewSFS(env, policy.DefaultSFSConfig())
	case PolicyKraken:
		kcfg := policy.DefaultKrakenConfig()
		kcfg.Window = cfg.Interval
		kcfg.SLO = cfg.SLO
		kcfg.MaxBatch = cfg.KrakenMaxBatch
		if kcfg.MaxBatch == 0 {
			kcfg.MaxBatch = krakenMaxBatchFor(cfg.Trace)
		}
		sched, err = policy.NewKraken(env, kcfg)
	case PolicyFaaSBatch:
		fcfg := core.DefaultConfig()
		fcfg.Interval = cfg.Interval
		fcfg.Multiplex = !cfg.DisableMultiplex
		fcfg.Prewarm = cfg.Prewarm
		fcfg.AdaptiveDispatch = cfg.AdaptiveDispatch
		fcfg.MinInterval = cfg.MinInterval
		fcfg.MaxInterval = cfg.MaxInterval
		fcfg.MaxGroupSize = cfg.MaxGroupSize
		batch, err = core.New(env, fcfg)
		sched = batch
	}
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("experiment: build %v scheduler: %w", cfg.Policy, err)
	}
	return nd, runner, sched, batch, nil
}

// krakenMaxBatchFor picks the paper-implied Kraken batch cap for a trace:
// I/O-dominated traces use ~5 (the paper's 5.26 invocations per Kraken
// container), CPU-intensive traces ~30 (Kraken provisioned close to
// FaaSBatch there, Fig. 13b).
func krakenMaxBatchFor(tr trace.Trace) int {
	io := 0
	for _, inv := range tr.Invocations {
		if inv.FibN == 0 {
			io++
		}
	}
	if io*2 >= tr.Len() {
		return 5
	}
	return 30
}

// cpuUtil computes mean utilisation from the sampled busy integral.
func cpuUtil(samples []metrics.Sample, cores float64) float64 {
	if len(samples) < 2 || cores <= 0 {
		return 0
	}
	first, last := samples[0], samples[len(samples)-1]
	span := last.T.Sub(first.T).Seconds()
	if span <= 0 {
		return 0
	}
	return (last.BusyCoreSeconds - first.BusyCoreSeconds) / (span * cores)
}

// SpecsFor maps trace invocations to function specs: fib(N) entries become
// CPU-intensive specs, the rest I/O specs.
func SpecsFor(tr trace.Trace) ([]workload.Spec, error) {
	specs := make([]workload.Spec, tr.Len())
	fibCache := map[int]workload.Spec{}
	ioCache := map[string]workload.Spec{}
	for i, inv := range tr.Invocations {
		if inv.FibN > 0 {
			s, ok := fibCache[inv.FibN]
			if !ok {
				var err error
				s, err = workload.FibSpec(inv.FibN)
				if err != nil {
					return nil, fmt.Errorf("experiment: invocation %d: %w", i, err)
				}
				fibCache[inv.FibN] = s
			}
			// Group by the trace's function identity (one deployed "fib"
			// function with varying N), not by input value.
			s.Name = inv.Fn
			specs[i] = s
			continue
		}
		s, ok := ioCache[inv.Fn]
		if !ok {
			s = workload.IOSpec(inv.Fn)
			ioCache[inv.Fn] = s
		}
		specs[i] = s
	}
	return specs, nil
}

// SLOFromVanilla runs the trace under Vanilla and returns each function's
// p98 end-to-end latency, the paper's fair-comparison SLO for Kraken.
func SLOFromVanilla(cfg Config) (map[string]time.Duration, error) {
	pre := cfg
	pre.Policy = PolicyVanilla
	pre.SLO = nil
	// The SLO pre-run is an implementation detail; keep it out of the
	// caller's trace.
	pre.Tracer = nil
	res, err := Run(pre)
	if err != nil {
		return nil, err
	}
	perFn := map[string][]time.Duration{}
	for _, r := range res.Records {
		perFn[r.Fn] = append(perFn[r.Fn], r.Total())
	}
	out := make(map[string]time.Duration, len(perFn))
	for fn, lats := range perFn {
		out[fn] = metrics.NewCDF(lats).P(0.98)
	}
	return out, nil
}
