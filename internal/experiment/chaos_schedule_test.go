package experiment

import (
	"testing"
	"time"

	"faasbatch/internal/chaos"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

func scheduleTestTrace(t *testing.T) trace.Trace {
	t.Helper()
	cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
	cfg.N = 120
	cfg.Span = 20 * time.Second
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	return tr
}

// TestChaosScheduleSwapsMidRun runs a two-phase schedule — quiet, then a
// container-crash storm — and checks the storm phase actually injected.
func TestChaosScheduleSwapsMidRun(t *testing.T) {
	tr := scheduleTestTrace(t)
	res, err := Run(Config{
		Policy:   PolicyFaaSBatch,
		Trace:    tr,
		Interval: 100 * time.Millisecond,
		Seed:     9,
		ChaosSchedule: []ChaosPhase{
			{At: 0, Rates: nil},
			{At: 5 * time.Second, Rates: map[chaos.Kind]float64{chaos.ContainerCrash: 0.4}},
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Retries == 0 && res.Failures == 0 {
		t.Error("storm phase caused no retries or failures")
	}
	if res.FaultSummary == "none" {
		t.Error("fault summary empty despite storm phase")
	}

	// A schedule that never raises a rate must inject nothing.
	quiet, err := Run(Config{
		Policy:   PolicyFaaSBatch,
		Trace:    tr,
		Interval: 100 * time.Millisecond,
		Seed:     9,
		ChaosSchedule: []ChaosPhase{
			{At: 0, Rates: nil},
			{At: 5 * time.Second, Rates: nil},
		},
	})
	if err != nil {
		t.Fatalf("Run (quiet): %v", err)
	}
	if quiet.BootFailures != 0 || quiet.FaultSummary != "none" {
		t.Errorf("quiet schedule injected faults: %d boot failures, summary %q",
			quiet.BootFailures, quiet.FaultSummary)
	}
}

func TestChaosScheduleValidation(t *testing.T) {
	tr := scheduleTestTrace(t)
	base := Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1}

	cfg := base
	cfg.ChaosSchedule = []ChaosPhase{{At: -time.Second}}
	if _, err := Run(cfg); err == nil {
		t.Error("negative offset accepted")
	}

	cfg = base
	cfg.ChaosSchedule = []ChaosPhase{{At: 2 * time.Second}, {At: time.Second}}
	if _, err := Run(cfg); err == nil {
		t.Error("unsorted schedule accepted")
	}

	cfg = base
	cfg.ChaosSchedule = []ChaosPhase{{At: 0, Rates: map[chaos.Kind]float64{chaos.BootFailure: 2}}}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range rate accepted")
	}
}
