package experiment

import (
	"fmt"
	"io"
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// Options tunes a figure reproduction run.
type Options struct {
	// Scale multiplies workload sizes; 1.0 reproduces the paper's scale.
	// Tests and quick benches use smaller scales.
	Scale float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions reproduces the paper's scale.
func DefaultOptions() Options { return Options{Scale: 1.0, Seed: 13} }

// scaled applies the scale factor with a floor of 1.
func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Figure is one reproducible table/figure of the paper.
type Figure struct {
	// ID is the registry key (e.g. "fig11").
	ID string
	// Title describes the artefact.
	Title string
	// Run regenerates the artefact, writing tables to w.
	Run func(w io.Writer, opts Options) error
}

// Figures lists every reproduction in paper order.
func Figures() []Figure {
	return []Figure{
		{ID: "fig1", Title: "Fig. 1 — Sharing vs Monopoly execution time (fib(30), concurrency 10–640)", Run: RunFig1},
		{ID: "fig2", Title: "Fig. 2 — Day-long invocation pattern of three hot functions", Run: RunFig2},
		{ID: "fig3", Title: "Fig. 3 — CDF of blob re-access inter-arrival times (14 days)", Run: RunFig3},
		{ID: "fig4", Title: "Fig. 4 — S3 client creation time vs in-container concurrency", Run: RunFig4},
		{ID: "fig5", Title: "Fig. 5 — Container memory vs concurrent client creations", Run: RunFig5},
		{ID: "fig9", Title: "Fig. 9 — Probability distribution of function durations", Run: RunFig9},
		{ID: "fig10", Title: "Fig. 10 — Invocation pattern of the generated workload", Run: RunFig10},
		{ID: "fig11", Title: "Fig. 11 — Latency CDFs, CPU-intensive functions, four policies", Run: RunFig11},
		{ID: "fig12", Title: "Fig. 12 — Latency CDFs, I/O functions, four policies", Run: RunFig12},
		{ID: "fig13", Title: "Fig. 13 — Resource cost vs dispatch interval, CPU-intensive functions", Run: RunFig13},
		{ID: "fig14", Title: "Fig. 14 — Resource cost vs dispatch interval, I/O functions", Run: RunFig14},
		{ID: "headline", Title: "§V headline — paper-reported vs measured improvement ratios", Run: RunHeadline},
		{ID: "ablation-multiplex", Title: "Ablation — Resource Multiplexer isolated from batching (I/O workload)", Run: RunAblationMultiplex},
		{ID: "ablation-keepalive", Title: "Ablation — container keep-alive sweep (memory vs cold starts)", Run: RunAblationKeepAlive},
		{ID: "ablation-burstiness", Title: "Ablation — bursty vs steady arrivals of the same volume", Run: RunAblationBurstiness},
		{ID: "sensitivity", Title: "Sensitivity — calibration perturbations vs headline orderings", Run: RunSensitivity},
		{ID: "ext-faults", Title: "Extension — degradation under injected container faults", Run: RunFaultSweep},
		{ID: "ext-cluster", Title: "Extension — FaaSBatch cluster scale-out and routing strategies", Run: RunExtensionCluster},
		{ID: "ext-prewarm", Title: "Extension — predictive pre-warming for FaaSBatch", Run: RunExtensionPrewarm},
		{ID: "ext-chains", Title: "Extension — sequential function chains across policies", Run: RunExtensionChains},
	}
}

// FigureByID looks a figure up by registry key.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// warmNode builds a node plus runner with pre-warmed containers for the
// motivation experiments (the paper warms containers up before firing).
func warmNode(seed int64, containers int, fn string) (*sim.Engine, *node.Node, *fnruntime.Runner, []*node.Container, error) {
	eng := sim.New(seed)
	cfg := node.DefaultConfig()
	nd, err := node.New(eng, cfg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	runner := fnruntime.NewRunner(eng)
	warmed := make([]*node.Container, 0, containers)
	for i := 0; i < containers; i++ {
		nd.Acquire(fn, node.AcquireOptions{}, func(r node.AcquireResult) {
			warmed = append(warmed, r.Container)
		})
	}
	eng.Run()
	if len(warmed) != containers {
		return nil, nil, nil, nil, fmt.Errorf("experiment: warmed %d/%d containers", len(warmed), containers)
	}
	return eng, nd, runner, warmed, nil
}

// RunFig1 reproduces the Sharing-vs-Monopoly motivation measurement: N
// concurrent fib(30) invocations inside one container versus across N
// containers, all warm.
func RunFig1(w io.Writer, opts Options) error {
	spec, err := workload.FibSpec(30)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"Fig. 1 — execution time of N concurrent fib(30) invocations (warm containers)",
		"concurrency", "sharing (1 container)", "monopoly (N containers)", "sharing/monopoly")
	for _, conc := range []int{10, 20, 40, 80, 160, 320, 640} {
		n := opts.scaled(conc)
		sharing, err := fig1Makespan(opts.Seed, n, true, spec)
		if err != nil {
			return err
		}
		monopoly, err := fig1Makespan(opts.Seed, n, false, spec)
		if err != nil {
			return err
		}
		ratio := float64(sharing) / float64(monopoly)
		tbl.AddRow(n, sharing.Round(time.Millisecond), monopoly.Round(time.Millisecond), ratio)
	}
	return tbl.Render(w)
}

// fig1Makespan measures the completion time of n concurrent invocations,
// either sharing one warm container or one warm container each.
func fig1Makespan(seed int64, n int, sharing bool, spec workload.Spec) (time.Duration, error) {
	containers := n
	if sharing {
		containers = 1
	}
	eng, _, runner, warmed, err := warmNode(seed, containers, spec.Name)
	if err != nil {
		return 0, err
	}
	start := eng.Now()
	var last sim.Time
	for i := 0; i < n; i++ {
		c := warmed[0]
		if !sharing {
			c = warmed[i]
		}
		inv := fnruntime.NewInvocation(int64(i), spec, start)
		if err := runner.Execute(inv, c, func(*fnruntime.Invocation) { last = eng.Now() }); err != nil {
			return 0, err
		}
	}
	eng.Run()
	return last.Sub(start), nil
}

// RunFig2 reproduces the day-long invocation patterns of three hot Azure
// functions, printed as per-hour buckets.
func RunFig2(w io.Writer, opts Options) error {
	cfg := trace.DefaultDailyConfig()
	cfg.Seed = opts.Seed
	cfg.MinPerFn = opts.scaled(cfg.MinPerFn)
	tr, err := trace.SynthesizeDaily(cfg)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"Fig. 2 — invocations per hour over one day (bursty, time-localised)",
		"function", "total", "peak/min", "active-min", "hourly profile")
	for _, fn := range tr.Functions() {
		minutes := trace.MinuteCounts(tr, fn)
		total, peak, active := 0, 0, 0
		hours := make([]int, 24)
		for i, c := range minutes {
			total += c
			if c > peak {
				peak = c
			}
			if c > 0 {
				active++
			}
			hours[i/60] += c
		}
		profile := ""
		for _, h := range hours {
			profile += fmt.Sprintf("%d ", h)
		}
		tbl.AddRow(fn, total, peak, active, profile)
	}
	return tbl.Render(w)
}

// RunFig3 reproduces the blob inter-arrival-time CDF: one row per
// threshold, with the merged curve and the min/max across the 14 daily
// curves.
func RunFig3(w io.Writer, opts Options) error {
	perDay := opts.scaled(20_000)
	days, err := trace.GenerateBlobDays(opts.Seed, 14, perDay)
	if err != nil {
		return err
	}
	merged := metrics.NewCDF(trace.MergeBlobDays(days))
	daily := make([]metrics.CDF, len(days))
	for i, d := range days {
		daily[i] = metrics.NewCDF(d.IaTs)
	}
	tbl := metrics.NewTable(
		"Fig. 3 — CDF of blob re-access inter-arrival time (14 days, merged + per-day spread)",
		"IaT <=", "merged CDF", "per-day min", "per-day max")
	for _, th := range []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
		time.Second, 10 * time.Second, 100 * time.Second, 1000 * time.Second,
	} {
		lo, hi := 1.0, 0.0
		for _, c := range daily {
			f := c.At(th)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		tbl.AddRow(th, merged.At(th), lo, hi)
	}
	return tbl.Render(w)
}

// fig45Batch runs k simultaneous I/O invocations in one warm container
// without a multiplexer and reports the batch creation elapsed time and
// the peak client memory.
func fig45Batch(seed int64, k int) (elapsed time.Duration, clientMemPeak int64, err error) {
	spec := workload.IOSpec("s3func")
	eng, nd, runner, warmed, err := warmNode(seed, 1, spec.Name)
	if err != nil {
		return 0, 0, err
	}
	baseline := nd.MemUsed()
	start := eng.Now()
	var last sim.Time
	for i := 0; i < k; i++ {
		inv := fnruntime.NewInvocation(int64(i), spec, start)
		if execErr := runner.Execute(inv, warmed[0], func(*fnruntime.Invocation) { last = eng.Now() }); execErr != nil {
			return 0, 0, execErr
		}
	}
	eng.Run()
	// Creation dominates; subtract the constant IO+compute tail so the
	// number matches Fig. 4's "time to create clients".
	elapsed = last.Sub(start) - spec.IOWait - spec.Work
	return elapsed, nd.MemPeak() - baseline, nil
}

// RunFig4 reproduces the client-creation blow-up under in-container
// concurrency (66 ms at k=1 to ~3.2 s at k=9).
func RunFig4(w io.Writer, opts Options) error {
	tbl := metrics.NewTable(
		"Fig. 4 — time to create S3 clients vs in-container concurrency (no multiplexer)",
		"concurrency", "creation elapsed", "vs k=1")
	base := time.Duration(0)
	for k := 1; k <= 10; k++ {
		elapsed, _, err := fig45Batch(opts.Seed, k)
		if err != nil {
			return err
		}
		if k == 1 {
			base = elapsed
		}
		tbl.AddRow(k, elapsed.Round(time.Millisecond), float64(elapsed)/float64(base))
	}
	return tbl.Render(w)
}

// RunFig5 reproduces the memory growth of duplicate client instances
// (9 MB at k=1 to ~60 MB at k=9).
func RunFig5(w io.Writer, opts Options) error {
	tbl := metrics.NewTable(
		"Fig. 5 — container client memory vs concurrent creations (no multiplexer)",
		"concurrency", "client memory (MB)")
	for k := 1; k <= 10; k++ {
		_, mem, err := fig45Batch(opts.Seed, k)
		if err != nil {
			return err
		}
		tbl.AddRow(k, metrics.MiB(mem))
	}
	return tbl.Render(w)
}

// RunFig9 validates the workload generator against the published duration
// distribution.
func RunFig9(w io.Writer, opts Options) error {
	n := opts.scaled(1_980_951 / 10) // a tenth of the trace is ample
	gen := workload.NewGenerator(opts.Seed)
	hist, err := metrics.NewHistogram(workload.DurationBucketBounds)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		d, err := workload.FibDuration(gen.SampleFibN())
		if err != nil {
			return err
		}
		hist.Add(d)
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Fig. 9 — function duration distribution (%d generated invocations)", n),
		"duration range", "paper", "generated")
	for i, f := range hist.Fractions() {
		tbl.AddRow(hist.BucketLabel(i), workload.DurationBucketWeights[i], f)
	}
	return tbl.Render(w)
}

// RunFig10 reproduces the replayed one-minute invocation pattern.
func RunFig10(w io.Writer, opts Options) error {
	cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
	cfg.Seed = opts.Seed
	cfg.N = opts.scaled(cfg.N)
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		return err
	}
	counts := tr.PerSecondCounts()
	peak, total := 0, 0
	for _, c := range counts {
		total += c
		if c > peak {
			peak = c
		}
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Fig. 10 — invocations per second (%d invocations / %v; peak %d, mean %.1f)",
			total, tr.Span, peak, float64(total)/float64(len(counts))),
		"second", "arrivals")
	for i, c := range counts {
		tbl.AddRow(i, c)
	}
	return tbl.Render(w)
}
