package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/obs"
)

// Trace emission for simulated runs. A completed metrics.Record pins each
// invocation's four latency components to exact virtual timestamps
// (Arrive, then Sched, Cold, Queue and Exec back to back), so spans are
// derived from records after the run rather than collected during it —
// the simulation stays byte-identical with tracing on or off.

var (
	traceDirMu sync.Mutex
	traceDir   string
	traceSeq   int
)

// SetTraceDir directs every subsequent Run to write a Chrome trace-event
// JSON file (run-NNN-<policy>.trace.json) into dir. An empty dir disables
// the sink. Used by faasbench's -trace-dir flag to capture per-figure-run
// traces.
func SetTraceDir(dir string) {
	traceDirMu.Lock()
	defer traceDirMu.Unlock()
	traceDir = dir
	traceSeq = 0
}

// nextTracePath reserves the next trace file name, or "" when the sink is
// disabled.
func nextTracePath(policy string) string {
	traceDirMu.Lock()
	defer traceDirMu.Unlock()
	if traceDir == "" {
		return ""
	}
	traceSeq++
	return filepath.Join(traceDir, fmt.Sprintf("run-%03d-%s.trace.json", traceSeq, policy))
}

// EmitSpans replays completed records into the tracer as decomposition
// spans on the virtual timeline. All four component spans are emitted even
// when zero-length, so a trace consumer can reconstruct every record's
// full decomposition without special-casing warm starts.
func EmitSpans(t *obs.Tracer, recs []metrics.Record) {
	for _, r := range recs {
		id := t.Begin()
		if id == 0 {
			continue
		}
		attempt := r.Retries + 1
		cursor := r.Arrive.Duration()
		for _, part := range []struct {
			name string
			dur  time.Duration
		}{
			{obs.SpanScheduling, r.Sched},
			{obs.SpanColdStart, r.Cold},
			{obs.SpanQueuing, r.Queue},
			{obs.SpanExecution, r.Exec},
		} {
			t.Record(obs.Span{
				Trace:     id,
				Name:      part.name,
				Fn:        r.Fn,
				Container: r.Container,
				Attempt:   attempt,
				Start:     cursor,
				End:       cursor + part.dur,
			})
			cursor += part.dur
		}
	}
}

// emitRunTrace feeds a finished run into cfg.Tracer (when set) and the
// SetTraceDir sink (when enabled).
func emitRunTrace(cfg Config, res *Result) error {
	if cfg.Tracer != nil {
		EmitSpans(cfg.Tracer, res.Records)
	}
	path := nextTracePath(res.Policy)
	if path == "" {
		return nil
	}
	capacity := 4 * len(res.Records)
	if capacity == 0 {
		capacity = 1
	}
	end := res.Makespan
	t, err := obs.NewTracer(obs.TracerConfig{
		Capacity: capacity,
		Clock:    func() time.Duration { return end },
	})
	if err != nil {
		return fmt.Errorf("experiment: trace sink: %w", err)
	}
	EmitSpans(t, res.Records)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: trace sink: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("experiment: trace sink: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiment: trace sink: %w", err)
	}
	return nil
}
