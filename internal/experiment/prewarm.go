package experiment

import (
	"fmt"
	"io"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/trace"
)

// recurringBurstTrace builds the workload pre-warming targets: bursts of
// one I/O function recurring with gaps longer than the keep-alive, so a
// platform without prediction pays a cold start per burst.
func recurringBurstTrace(opts Options) trace.Trace {
	const bursts = 6
	perBurst := opts.scaled(40)
	gap := 8 * time.Second
	tr := trace.Trace{Name: "recurring-bursts", Span: bursts * gap}
	for b := 0; b < bursts; b++ {
		for i := 0; i < perBurst; i++ {
			tr.Invocations = append(tr.Invocations, trace.Invocation{
				Offset: time.Duration(b)*gap + time.Duration(i)*5*time.Millisecond,
				Fn:     "s3func",
			})
		}
	}
	return tr
}

// RunExtensionPrewarm compares plain FaaSBatch with predictive
// pre-warming (extension) on recurring bursts under a short keep-alive:
// without prediction every burst re-pays the cold start its evicted
// container left behind; the activity horizon re-provisions capacity as
// soon as eviction strikes.
func RunExtensionPrewarm(w io.Writer, opts Options) error {
	tr := recurringBurstTrace(opts)
	ncfg := node.DefaultConfig()
	ncfg.KeepAlive = 2 * time.Second // shorter than the burst gap
	tbl := metrics.NewTable(
		fmt.Sprintf("Extension — predictive pre-warming (recurring bursts, keep-alive %v)", ncfg.KeepAlive),
		"variant", "containers", "prewarms", "touches", "cold invocations", "cold p99", "total p99")
	for _, prewarm := range []bool{false, true} {
		res, err := Run(Config{
			Policy:  PolicyFaaSBatch,
			Trace:   tr,
			Seed:    opts.Seed,
			Node:    ncfg,
			Prewarm: prewarm,
		})
		if err != nil {
			return fmt.Errorf("prewarm=%v: %w", prewarm, err)
		}
		label := "faasbatch"
		prewarms, touches := int64(0), int64(0)
		if prewarm {
			label = "faasbatch + prewarm"
			if res.Batch != nil {
				prewarms = res.Batch.Prewarms
				touches = res.Batch.KeepWarmTouches
			}
		}
		coldCount := 0
		for _, r := range res.Records {
			if r.Cold > 0 {
				coldCount++
			}
		}
		cold := res.CDF(metrics.ColdStart)
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(label, res.TotalContainers, prewarms, touches,
			fmt.Sprintf("%d/%d", coldCount, len(res.Records)),
			cold.P(0.99).Round(time.Millisecond),
			tot.P(0.99).Round(time.Millisecond))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nKeep-warm touches pin predicted-active functions' containers across\nkeep-alive eviction, so only the very first burst pays a cold start.")
	return err
}
