package experiment

import (
	"testing"
	"time"

	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// smallCPUTrace builds a reduced CPU-intensive burst trace for fast tests.
func smallCPUTrace(t *testing.T, n int) trace.Trace {
	t.Helper()
	cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
	cfg.N = n
	cfg.Span = 20 * time.Second
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	return tr
}

func smallIOTrace(t *testing.T, n int) trace.Trace {
	t.Helper()
	cfg := trace.DefaultBurstConfig(workload.IO)
	cfg.N = n
	cfg.Span = 20 * time.Second
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		t.Fatalf("SynthesizeBurst: %v", err)
	}
	return tr
}

func TestPolicyKindString(t *testing.T) {
	names := map[PolicyKind]string{
		PolicyVanilla:   "vanilla",
		PolicySFS:       "sfs",
		PolicyKraken:    "kraken",
		PolicyFaaSBatch: "faasbatch",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if PolicyKind(0).String() != "policy(0)" {
		t.Error("unknown policy string wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Policy: PolicyKind(99), Trace: smallCPUTrace(t, 5)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Run(Config{Policy: PolicyVanilla}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRunCompletesEveryInvocation(t *testing.T) {
	tr := smallCPUTrace(t, 100)
	for _, p := range AllPolicies {
		res, err := Run(Config{Policy: p, Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(res.Records) != tr.Len() {
			t.Errorf("%v: %d records, want %d", p, len(res.Records), tr.Len())
		}
		if res.Policy != p.String() {
			t.Errorf("result policy = %q, want %q", res.Policy, p)
		}
		if res.TotalContainers < 1 {
			t.Errorf("%v: no containers provisioned", p)
		}
		if res.Makespan <= 0 {
			t.Errorf("%v: makespan = %v", p, res.Makespan)
		}
		if len(res.Samples) < 2 {
			t.Errorf("%v: only %d samples", p, len(res.Samples))
		}
		for _, r := range res.Records {
			if r.Total() <= 0 {
				t.Errorf("%v: non-positive total latency %+v", p, r)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := smallCPUTrace(t, 60)
	run := func() *Result {
		res, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 7})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalContainers != b.TotalContainers || a.Makespan != b.Makespan {
		t.Fatalf("runs diverged: %d/%v vs %d/%v", a.TotalContainers, a.Makespan, b.TotalContainers, b.Makespan)
	}
	am := map[int64]time.Duration{}
	for _, r := range a.Records {
		am[r.ID] = r.Total()
	}
	for _, r := range b.Records {
		if am[r.ID] != r.Total() {
			t.Fatalf("record %d diverged: %v vs %v", r.ID, am[r.ID], r.Total())
		}
	}
}

func TestFaaSBatchProvisionsFewestContainers(t *testing.T) {
	tr := smallIOTrace(t, 150)
	containers := map[PolicyKind]int{}
	for _, p := range AllPolicies {
		res, err := Run(Config{Policy: p, Trace: tr, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		containers[p] = res.TotalContainers
	}
	if containers[PolicyFaaSBatch] >= containers[PolicyVanilla] {
		t.Errorf("faasbatch containers %d not fewer than vanilla %d", containers[PolicyFaaSBatch], containers[PolicyVanilla])
	}
	if containers[PolicyFaaSBatch] >= containers[PolicySFS] {
		t.Errorf("faasbatch containers %d not fewer than sfs %d", containers[PolicyFaaSBatch], containers[PolicySFS])
	}
	if containers[PolicyKraken] >= containers[PolicyVanilla] {
		t.Errorf("kraken containers %d not fewer than vanilla %d", containers[PolicyKraken], containers[PolicyVanilla])
	}
}

func TestMultiplexerCollapsesIOExecution(t *testing.T) {
	tr := smallIOTrace(t, 150)
	fb, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("faasbatch: %v", err)
	}
	va, err := Run(Config{Policy: PolicyVanilla, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("vanilla: %v", err)
	}
	// FaaSBatch execution latency must sit in the paper's 10–100 ms band.
	fbExec := fb.CDF(metrics.Execution)
	if fbExec.P(0.95) > 100*time.Millisecond {
		t.Errorf("faasbatch exec p95 = %v, want <= 100ms", fbExec.P(0.95))
	}
	// And its client memory per invocation must be far below Vanilla's.
	if fb.ClientMemPerInvocation*5 > va.ClientMemPerInvocation {
		t.Errorf("client mem per invocation: faasbatch %.2f vs vanilla %.2f, want >= 5x gap",
			fb.ClientMemPerInvocation/(1<<20), va.ClientMemPerInvocation/(1<<20))
	}
	if fb.Runner.CacheHits+fb.Runner.CacheCoalesced == 0 {
		t.Error("faasbatch multiplexer recorded no hits")
	}
	if fb.Batch == nil || fb.Batch.Groups == 0 {
		t.Error("faasbatch batch stats missing")
	}
}

func TestMultiplexAblation(t *testing.T) {
	tr := smallIOTrace(t, 100)
	on, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("multiplex on: %v", err)
	}
	off, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1, DisableMultiplex: true})
	if err != nil {
		t.Fatalf("multiplex off: %v", err)
	}
	if off.Runner.ClientsBuilt <= on.Runner.ClientsBuilt {
		t.Errorf("clients built: off %d <= on %d", off.Runner.ClientsBuilt, on.Runner.ClientsBuilt)
	}
	onExec := on.CDF(metrics.Execution)
	offExec := off.CDF(metrics.Execution)
	if offExec.P(0.9) <= onExec.P(0.9) {
		t.Errorf("exec p90 without multiplexer %v not worse than with %v", offExec.P(0.9), onExec.P(0.9))
	}
}

func TestKrakenHasQueuingOthersDoNot(t *testing.T) {
	tr := smallCPUTrace(t, 120)
	kr, err := Run(Config{Policy: PolicyKraken, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("kraken: %v", err)
	}
	va, err := Run(Config{Policy: PolicyVanilla, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("vanilla: %v", err)
	}
	fb, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("faasbatch: %v", err)
	}
	if kr.CDF(metrics.Queuing).Max() == 0 {
		t.Error("kraken shows no queuing latency")
	}
	if va.CDF(metrics.Queuing).Max() != 0 {
		t.Error("vanilla shows queuing latency")
	}
	if fb.CDF(metrics.Queuing).Max() != 0 {
		t.Error("faasbatch shows queuing latency (inline parallel must not queue)")
	}
}

func TestFaaSBatchSchedulingBoundedByWindow(t *testing.T) {
	tr := smallCPUTrace(t, 150)
	interval := 200 * time.Millisecond
	res, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1, Interval: interval})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sched := res.CDF(metrics.Scheduling)
	// Without engine-queue congestion FaaSBatch scheduling latency is
	// bounded by window + http hop (plus rare creation-queue waits).
	if sched.P(0.9) > interval+50*time.Millisecond {
		t.Errorf("faasbatch sched p90 = %v, want <= window+slack", sched.P(0.9))
	}
}

func TestIntervalSweepShrinksFaaSBatchContainers(t *testing.T) {
	tr := smallIOTrace(t, 150)
	small, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("10ms: %v", err)
	}
	large, err := Run(Config{Policy: PolicyFaaSBatch, Trace: tr, Seed: 1, Interval: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("500ms: %v", err)
	}
	if large.TotalContainers > small.TotalContainers {
		t.Errorf("500ms interval created %d containers vs %d at 10ms; larger windows must not need more",
			large.TotalContainers, small.TotalContainers)
	}
	if large.AvgMemBytes > small.AvgMemBytes*1.1 {
		t.Errorf("500ms avg mem %.0f worse than 10ms %.0f", large.AvgMemBytes, small.AvgMemBytes)
	}
}

func TestSLOFromVanilla(t *testing.T) {
	tr := smallCPUTrace(t, 80)
	slo, err := SLOFromVanilla(Config{Policy: PolicyKraken, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("SLOFromVanilla: %v", err)
	}
	if len(slo) == 0 {
		t.Fatal("no SLOs derived")
	}
	for fn, s := range slo {
		if s <= 0 {
			t.Errorf("SLO[%s] = %v", fn, s)
		}
	}
}

func TestSpecsFor(t *testing.T) {
	tr := trace.Trace{Invocations: []trace.Invocation{
		{Fn: "fib", FibN: 25},
		{Fn: "s3func"},
	}}
	specs, err := SpecsFor(tr)
	if err != nil {
		t.Fatalf("SpecsFor: %v", err)
	}
	if specs[0].Kind != workload.CPUIntensive || specs[0].Name != "fib" {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Kind != workload.IO || specs[1].Client == nil {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	bad := trace.Trace{Invocations: []trace.Invocation{{Fn: "fib", FibN: 5}}}
	if _, err := SpecsFor(bad); err == nil {
		t.Error("invalid fib N accepted")
	}
}

func TestCPUUtilPositiveAndBounded(t *testing.T) {
	tr := smallCPUTrace(t, 100)
	res, err := Run(Config{Policy: PolicyVanilla, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CPUUtil <= 0 || res.CPUUtil > 1 {
		t.Errorf("CPUUtil = %v, want (0, 1]", res.CPUUtil)
	}
}

func TestRunSurvivesBootFailures(t *testing.T) {
	// Failure injection: 30% of container boots fail and retry. Every
	// policy must still complete every invocation, with failures visible
	// as longer cold starts rather than lost work.
	tr := smallCPUTrace(t, 60)
	ncfg := nodeDefaultWithFailures(0.3)
	for _, p := range AllPolicies {
		res, err := Run(Config{Policy: p, Trace: tr, Seed: 3, Node: ncfg})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(res.Records) != tr.Len() {
			t.Errorf("%v: %d/%d records under boot failures", p, len(res.Records), tr.Len())
		}
	}
}

// nodeDefaultWithFailures returns the default node config with the given
// boot failure rate.
func nodeDefaultWithFailures(rate float64) node.Config {
	cfg := node.DefaultConfig()
	cfg.BootFailureRate = rate
	return cfg
}
