// Package metrics provides the measurement vocabulary of the evaluation:
// per-invocation latency decomposition, empirical CDFs, duration histograms,
// periodic resource sampling, and plain-text table rendering for the
// figure/table reproductions.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"faasbatch/internal/sim"
)

// Record is the latency decomposition of one function invocation, following
// the paper's definition (§IV): scheduling latency (receipt until dispatch
// to a container, excluding cold start), cold-start latency (booting the
// selected container), queuing latency (waiting inside the container), and
// execution latency (CPU/IO time of the function body).
type Record struct {
	// ID uniquely identifies the invocation within a run.
	ID int64
	// Fn is the function name.
	Fn string
	// Arrive is the virtual time the platform received the invocation.
	Arrive sim.Time
	// Sched is the scheduling latency (cold start excluded).
	Sched time.Duration
	// Cold is the cold-start latency (zero on a warm start).
	Cold time.Duration
	// Queue is the in-container queuing latency.
	Queue time.Duration
	// Exec is the execution latency.
	Exec time.Duration
	// Container identifies the container that executed the invocation
	// (empty when the invocation never reached a container body, e.g. a
	// failure after its retry budget drained). Containers serve a single
	// function for their whole life, so records sharing a Container must
	// share Fn — the group-purity invariant the property tests check.
	Container string
	// Retries counts extra scheduling attempts the invocation needed
	// (container crashes, boot failures); zero on the happy path.
	Retries int
	// Failed reports that the invocation exhausted its retry budget and
	// completed as a failure. Failed records still carry the latency
	// accumulated until the final attempt was given up.
	Failed bool
}

// Total reports the end-to-end invocation latency.
func (r Record) Total() time.Duration { return r.Sched + r.Cold + r.Queue + r.Exec }

// Imbalance reports max/mean over per-entity counts (1.0 = perfectly
// balanced; 0 when counts are empty or sum to zero). The cluster applies
// it to per-node container provisioning, the live router to per-worker
// forwarded invocations — one skew definition across sim and live.
func Imbalance(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	maxC, sum := 0, 0
	for _, n := range counts {
		sum += n
		if n > maxC {
			maxC = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(maxC) / mean
}

// Component selects one latency component of a Record.
type Component int

// Latency components, in pipeline order.
const (
	Scheduling Component = iota + 1
	ColdStart
	Queuing
	Execution
	ExecPlusQueue
	EndToEnd
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case Scheduling:
		return "scheduling"
	case ColdStart:
		return "cold-start"
	case Queuing:
		return "queuing"
	case Execution:
		return "execution"
	case ExecPlusQueue:
		return "exec+queue"
	case EndToEnd:
		return "end-to-end"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// Of extracts the component's value from a record.
func (c Component) Of(r Record) time.Duration {
	switch c {
	case Scheduling:
		return r.Sched
	case ColdStart:
		return r.Cold
	case Queuing:
		return r.Queue
	case Execution:
		return r.Exec
	case ExecPlusQueue:
		return r.Exec + r.Queue
	case EndToEnd:
		return r.Total()
	default:
		return 0
	}
}

// Extract pulls one latency component out of a record slice.
func Extract(recs []Record, c Component) []time.Duration {
	out := make([]time.Duration, len(recs))
	for i, r := range recs {
		out[i] = c.Of(r)
	}
	return out
}

// CDF is an empirical cumulative distribution over durations.
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds a CDF from the given values (the input is not mutated).
func NewCDF(values []time.Duration) CDF {
	s := make([]time.Duration, len(values))
	copy(s, values)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return CDF{sorted: s}
}

// Len reports the number of underlying values.
func (c CDF) Len() int { return len(c.sorted) }

// P reports the q-quantile (0 <= q <= 1) using nearest-rank interpolation.
// It returns 0 for an empty CDF.
func (c CDF) P(q float64) time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// At reports the fraction of values <= v.
func (c CDF) At(v time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	n := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > v })
	return float64(n) / float64(len(c.sorted))
}

// Min reports the smallest value (0 if empty).
func (c CDF) Min() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max reports the largest value (0 if empty).
func (c CDF) Max() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean reports the arithmetic mean (0 if empty).
func (c CDF) Mean() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.sorted {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(c.sorted)))
}

// Point is one (value, cumulative fraction) pair of a rendered CDF curve.
type Point struct {
	Value    time.Duration
	Fraction float64
}

// Points samples the CDF at n evenly spaced cumulative fractions,
// producing a plottable curve like the paper's figures.
func (c CDF) Points(n int) []Point {
	if n <= 0 || len(c.sorted) == 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		pts = append(pts, Point{Value: c.P(q), Fraction: q})
	}
	return pts
}

// Histogram counts durations into half-open buckets
// [bounds[0], bounds[1]), ..., [bounds[n-1], +inf). Values below bounds[0]
// are counted in the first bucket.
type Histogram struct {
	bounds []time.Duration
	counts []int
	total  int
}

// NewHistogram creates a histogram with the given ascending lower bounds.
// It returns an error if bounds is empty or not strictly increasing.
func NewHistogram(bounds []time.Duration) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds must be strictly increasing at index %d", i)
		}
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int, len(bounds))}, nil
}

// Add counts one value.
func (h *Histogram) Add(v time.Duration) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] > v })
	if idx == 0 {
		idx = 1 // values below the first bound fold into the first bucket
	}
	h.counts[idx-1]++
	h.total++
}

// Total reports the number of values counted.
func (h *Histogram) Total() int { return h.total }

// Fractions reports the per-bucket fraction of the total (all zeros when
// the histogram is empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// BucketLabel formats bucket i as "[lo, hi)" (the last as "[lo, inf)").
func (h *Histogram) BucketLabel(i int) string {
	if i < 0 || i >= len(h.bounds) {
		return ""
	}
	lo := h.bounds[i]
	if i == len(h.bounds)-1 {
		return fmt.Sprintf("[%v, inf)", lo)
	}
	return fmt.Sprintf("[%v, %v)", lo, h.bounds[i+1])
}

// NumBuckets reports the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.bounds) }
