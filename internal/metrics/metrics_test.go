package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/sim"
)

func TestRecordTotalIsSumOfComponents(t *testing.T) {
	r := Record{
		Sched: 10 * time.Millisecond,
		Cold:  500 * time.Millisecond,
		Queue: 30 * time.Millisecond,
		Exec:  200 * time.Millisecond,
	}
	if got, want := r.Total(), 740*time.Millisecond; got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

func TestComponentOf(t *testing.T) {
	r := Record{
		Sched: 1 * time.Millisecond,
		Cold:  2 * time.Millisecond,
		Queue: 4 * time.Millisecond,
		Exec:  8 * time.Millisecond,
	}
	cases := []struct {
		c    Component
		want time.Duration
	}{
		{Scheduling, 1 * time.Millisecond},
		{ColdStart, 2 * time.Millisecond},
		{Queuing, 4 * time.Millisecond},
		{Execution, 8 * time.Millisecond},
		{ExecPlusQueue, 12 * time.Millisecond},
		{EndToEnd, 15 * time.Millisecond},
	}
	for _, c := range cases {
		if got := c.c.Of(r); got != c.want {
			t.Errorf("%v.Of = %v, want %v", c.c, got, c.want)
		}
	}
	if Component(99).Of(r) != 0 {
		t.Error("unknown component should extract 0")
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{
		Scheduling:    "scheduling",
		ColdStart:     "cold-start",
		Queuing:       "queuing",
		Execution:     "execution",
		ExecPlusQueue: "exec+queue",
		EndToEnd:      "end-to-end",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Component(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown component String = %q", got)
	}
}

func TestExtract(t *testing.T) {
	recs := []Record{
		{Sched: 1 * time.Millisecond, Exec: 10 * time.Millisecond},
		{Sched: 2 * time.Millisecond, Exec: 20 * time.Millisecond},
	}
	got := Extract(recs, Scheduling)
	if len(got) != 2 || got[0] != time.Millisecond || got[1] != 2*time.Millisecond {
		t.Fatalf("Extract(Scheduling) = %v", got)
	}
}

func TestCDFQuantiles(t *testing.T) {
	var vals []time.Duration
	for i := 1; i <= 100; i++ {
		vals = append(vals, time.Duration(i)*time.Millisecond)
	}
	// Shuffle to check sorting.
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	c := NewCDF(vals)
	if got := c.P(0.5); got != 50*time.Millisecond {
		t.Errorf("P(0.5) = %v, want 50ms", got)
	}
	if got := c.P(0.98); got != 98*time.Millisecond {
		t.Errorf("P(0.98) = %v, want 98ms", got)
	}
	if got := c.P(0); got != time.Millisecond {
		t.Errorf("P(0) = %v, want 1ms", got)
	}
	if got := c.P(1); got != 100*time.Millisecond {
		t.Errorf("P(1) = %v, want 100ms", got)
	}
	if got := c.Min(); got != time.Millisecond {
		t.Errorf("Min = %v, want 1ms", got)
	}
	if got := c.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
	if got := c.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", got)
	}
	if got := c.Len(); got != 100 {
		t.Errorf("Len = %d, want 100", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond})
	cases := []struct {
		v    time.Duration
		want float64
	}{
		{5 * time.Millisecond, 0},
		{10 * time.Millisecond, 0.25},
		{25 * time.Millisecond, 0.5},
		{40 * time.Millisecond, 1},
		{time.Hour, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.v); got != cse.want {
			t.Errorf("At(%v) = %v, want %v", cse.v, got, cse.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.P(0.5) != 0 || c.At(time.Second) != 0 || c.Min() != 0 || c.Max() != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
	if pts := c.Points(10); pts != nil {
		t.Fatalf("empty CDF Points = %v, want nil", pts)
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("NewCDF mutated its input: %v", in)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	vals := []time.Duration{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	for i := range vals {
		vals[i] *= time.Millisecond
	}
	pts := NewCDF(vals).Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
			t.Fatalf("points not monotone at %d: %+v", i, pts)
		}
	}
	if pts[9].Fraction != 1 {
		t.Fatalf("last fraction = %v, want 1", pts[9].Fraction)
	}
}

// Property: for any data, quantiles are monotone in q and bounded by
// min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			vals[i] = time.Duration(r%1_000_000) * time.Microsecond
		}
		c := NewCDF(vals)
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.P(q)
			if v < prev || v < c.Min() || v > c.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: At and P are approximate inverses: At(P(q)) >= q.
func TestPropertyAtPInverse(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			vals[i] = time.Duration(r) * time.Millisecond
		}
		c := NewCDF(vals)
		q := float64(qRaw%100) / 100
		return c.At(c.P(q)) >= q-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Add(10 * time.Millisecond)  // bucket 0
	h.Add(49 * time.Millisecond)  // bucket 0
	h.Add(50 * time.Millisecond)  // bucket 1
	h.Add(99 * time.Millisecond)  // bucket 1
	h.Add(100 * time.Millisecond) // bucket 2
	h.Add(time.Hour)              // bucket 2
	if got := h.Counts(); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("Counts = %v, want [2 2 2]", got)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	fr := h.Fractions()
	for i, f := range fr {
		if f != 1.0/3 {
			t.Fatalf("Fractions[%d] = %v, want 1/3", i, f)
		}
	}
	if got := h.BucketLabel(0); got != "[0s, 50ms)" {
		t.Errorf("BucketLabel(0) = %q", got)
	}
	if got := h.BucketLabel(2); got != "[100ms, inf)" {
		t.Errorf("BucketLabel(2) = %q", got)
	}
	if got := h.BucketLabel(9); got != "" {
		t.Errorf("BucketLabel(9) = %q, want empty", got)
	}
	if h.NumBuckets() != 3 {
		t.Errorf("NumBuckets = %d, want 3", h.NumBuckets())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("NewHistogram(nil) succeeded, want error")
	}
	if _, err := NewHistogram([]time.Duration{10, 10}); err == nil {
		t.Error("non-increasing bounds accepted, want error")
	}
	if _, err := NewHistogram([]time.Duration{10, 5}); err == nil {
		t.Error("decreasing bounds accepted, want error")
	}
}

func TestHistogramBelowFirstBoundFoldsIntoFirstBucket(t *testing.T) {
	h, err := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Add(time.Millisecond)
	if got := h.Counts(); got[0] != 1 {
		t.Fatalf("Counts = %v, want first bucket to hold the low value", got)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h, err := NewHistogram([]time.Duration{0, time.Second})
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram fractions should be zero")
		}
	}
}

// Property: histogram conserves counts and fractions sum to 1.
func TestPropertyHistogramConservation(t *testing.T) {
	bounds := []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 1550 * time.Millisecond}
	f := func(raw []uint32) bool {
		h, err := NewHistogram(bounds)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Add(time.Duration(r%3000) * time.Millisecond)
		}
		n := 0
		for _, c := range h.Counts() {
			n += c
		}
		if n != len(raw) {
			return false
		}
		if len(raw) == 0 {
			return true
		}
		sum := 0.0
		for _, fr := range h.Fractions() {
			sum += fr
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampler(t *testing.T) {
	eng := sim.New(1)
	mem := int64(0)
	busy := 0.0
	s, err := StartSampler(eng, time.Second, func(now sim.Time) Sample {
		return Sample{T: now, MemBytes: mem, Containers: int(mem / 100), BusyCoreSeconds: busy}
	})
	if err != nil {
		t.Fatalf("StartSampler: %v", err)
	}
	eng.Schedule(1500*time.Millisecond, func() { mem = 1000; busy = 2 })
	eng.RunUntil(sim.Time(3500 * time.Millisecond))
	s.Stop()
	eng.Run()
	samples := s.Samples()
	if len(samples) != 4 { // t=0 (immediate), 1s, 2s, 3s
		t.Fatalf("got %d samples, want 4: %+v", len(samples), samples)
	}
	if samples[1].MemBytes != 0 || samples[2].MemBytes != 1000 {
		t.Fatalf("sample values wrong: %+v", samples)
	}
	if got := s.PeakMemBytes(); got != 1000 {
		t.Errorf("PeakMemBytes = %d, want 1000", got)
	}
	if got := s.PeakContainers(); got != 10 {
		t.Errorf("PeakContainers = %d, want 10", got)
	}
	if got := s.AvgMemBytes(); got != 500 {
		t.Errorf("AvgMemBytes = %v, want 500", got)
	}
	// busy went 0 -> 2 core-seconds over a 3s span on a 2-core node:
	// utilisation = 2 / (3*2) = 1/3.
	if got := s.AvgCPUUtil(2); got < 0.33 || got > 0.34 {
		t.Errorf("AvgCPUUtil = %v, want ~0.333", got)
	}
}

func TestSamplerValidation(t *testing.T) {
	eng := sim.New(1)
	if _, err := StartSampler(eng, time.Second, nil); err == nil {
		t.Error("nil probe accepted, want error")
	}
	if _, err := StartSampler(eng, 0, func(sim.Time) Sample { return Sample{} }); err == nil {
		t.Error("zero period accepted, want error")
	}
}

func TestSamplerEdgeAggregates(t *testing.T) {
	eng := sim.New(1)
	s, err := StartSampler(eng, time.Second, func(now sim.Time) Sample { return Sample{T: now} })
	if err != nil {
		t.Fatalf("StartSampler: %v", err)
	}
	s.Stop()
	if got := s.AvgCPUUtil(4); got != 0 {
		t.Errorf("single-sample AvgCPUUtil = %v, want 0", got)
	}
	if got := s.AvgCPUUtil(0); got != 0 {
		t.Errorf("zero-core AvgCPUUtil = %v, want 0", got)
	}
}

func TestByteUnits(t *testing.T) {
	if got := MiB(1 << 20); got != 1 {
		t.Errorf("MiB(1<<20) = %v, want 1", got)
	}
	if got := GiB(1 << 30); got != 1 {
		t.Errorf("GiB(1<<30) = %v, want 1", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Fig X", "policy", "latency", "ratio")
	tbl.AddRow("vanilla", 120*time.Millisecond, 1.0)
	tbl.AddRow("faasbatch", 10*time.Millisecond, 0.083)
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"Fig X", "policy", "vanilla", "faasbatch", "120ms", "0.083"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestCDFHandlesUnsortedDuplicates(t *testing.T) {
	vals := []time.Duration{5, 5, 5, 1, 1, 9}
	c := NewCDF(vals)
	if !sort.SliceIsSorted(c.sorted, func(i, j int) bool { return c.sorted[i] < c.sorted[j] }) {
		t.Fatal("CDF not sorted")
	}
	if got := c.At(5); got != 5.0/6 {
		t.Fatalf("At(5) = %v, want 5/6", got)
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{nil, 0},
		{[]int{0, 0, 0}, 0},
		{[]int{4, 4}, 1},
		{[]int{6, 2}, 1.5},  // mean 4, max 6
		{[]int{9, 0, 0}, 3}, // one node hogs everything
	}
	for _, c := range cases {
		if got := Imbalance(c.counts); got != c.want {
			t.Errorf("Imbalance(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}
