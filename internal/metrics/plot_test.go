package metrics

import (
	"strings"
	"testing"
	"time"
)

func cdfOf(vals ...time.Duration) CDF { return NewCDF(vals) }

func TestPlotRenderBasics(t *testing.T) {
	p := NewPlot("latency CDF", 40, 10)
	p.Add("fast", cdfOf(10*time.Millisecond, 20*time.Millisecond, 30*time.Millisecond))
	p.Add("slow", cdfOf(time.Second, 2*time.Second, 4*time.Second))
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"latency CDF", "* fast", "o slow", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Both markers appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + 10 grid rows + axis + labels + legend + trailing empty.
	if len(lines) != 15 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestPlotEmptyFails(t *testing.T) {
	p := NewPlot("empty", 10, 5)
	if err := p.Render(&strings.Builder{}); err == nil {
		t.Fatal("empty plot rendered")
	}
}

func TestPlotDefaultsAndMarkerCycling(t *testing.T) {
	p := NewPlot("", 0, 0)
	if p.width != 64 || p.height != 16 {
		t.Fatalf("defaults = %dx%d", p.width, p.height)
	}
	for i := 0; i < len(plotMarkers)+2; i++ {
		p.Add("s", cdfOf(time.Millisecond))
	}
	if p.series[len(plotMarkers)].marker != p.series[0].marker {
		t.Fatal("markers must cycle")
	}
}

func TestPlotHandlesZeroValues(t *testing.T) {
	p := NewPlot("zeros", 20, 5)
	p.Add("zeroish", cdfOf(0, 0, time.Millisecond))
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatalf("Render with zeros: %v", err)
	}
}

func TestPlotFasterCurveSitsLeft(t *testing.T) {
	// The fast series must reach fraction 1.0 at a smaller x than the
	// slow series: in the top grid row, the fast marker's first column
	// must be left of the slow marker's first column.
	p := NewPlot("", 60, 12)
	p.Add("fast", cdfOf(5*time.Millisecond, 6*time.Millisecond, 7*time.Millisecond))
	p.Add("slow", cdfOf(3*time.Second, 4*time.Second, 5*time.Second))
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	lines := strings.Split(b.String(), "\n")
	top := lines[0] // no title
	fastAt := strings.IndexByte(top, '*')
	slowAt := strings.IndexByte(top, 'o')
	if fastAt < 0 || slowAt < 0 {
		t.Fatalf("top row missing markers: %q", top)
	}
	if fastAt >= slowAt {
		t.Fatalf("fast series (col %d) not left of slow (col %d)", fastAt, slowAt)
	}
}

func TestPlotCDFs(t *testing.T) {
	cdfs := map[string]CDF{
		"a": cdfOf(time.Millisecond),
		"b": cdfOf(time.Second),
	}
	var b strings.Builder
	if err := PlotCDFs(&b, "t", []string{"a", "b"}, cdfs); err != nil {
		t.Fatalf("PlotCDFs: %v", err)
	}
	if err := PlotCDFs(&strings.Builder{}, "t", []string{"missing"}, cdfs); err == nil {
		t.Fatal("missing series accepted")
	}
	// Empty names: sorted map order.
	if err := PlotCDFs(&b, "t", nil, cdfs); err != nil {
		t.Fatalf("PlotCDFs(nil names): %v", err)
	}
}

func TestCompactDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500us",
		5 * time.Millisecond:    "5ms",
		1500 * time.Millisecond: "2s",
		3 * time.Minute:         "3m",
	}
	for d, want := range cases {
		if got := compactDuration(d); got != want {
			t.Errorf("compactDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

// failingWriter errors after n bytes to exercise render error paths.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFull
	}
	take := len(p)
	if take > f.n {
		take = f.n
	}
	f.n -= take
	if take < len(p) {
		return take, errFull
	}
	return take, nil
}

var errFull = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestPlotRenderWriteError(t *testing.T) {
	p := NewPlot("t", 10, 5)
	p.Add("s", cdfOf(time.Millisecond))
	if err := p.Render(&failingWriter{n: 3}); err == nil {
		t.Fatal("failing writer accepted")
	}
}

func TestTableRenderWriteError(t *testing.T) {
	tbl := NewTable("t", "a")
	tbl.AddRow("x")
	if err := tbl.Render(&failingWriter{n: 1}); err == nil {
		t.Fatal("failing writer accepted")
	}
}
