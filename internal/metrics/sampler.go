package metrics

import (
	"fmt"
	"time"

	"faasbatch/internal/sim"
)

// Sample is one periodic observation of worker-node resource state,
// mirroring the paper's once-per-second host sampling (§V-B).
type Sample struct {
	// T is the virtual time of the observation.
	T sim.Time
	// MemBytes is the node memory in use.
	MemBytes int64
	// Containers is the number of live (booting, idle or busy) containers.
	Containers int
	// BusyCoreSeconds is the cumulative CPU busy integral at T.
	BusyCoreSeconds float64
}

// Probe observes current node state for the sampler.
type Probe func(t sim.Time) Sample

// Sampler records node resource samples at a fixed virtual-time period.
type Sampler struct {
	ticker  *sim.Ticker
	probe   Probe
	samples []Sample
}

// StartSampler begins sampling with the given period. The first sample is
// taken immediately (at the current virtual time).
func StartSampler(eng *sim.Engine, period time.Duration, probe Probe) (*Sampler, error) {
	if probe == nil {
		return nil, fmt.Errorf("metrics: sampler probe must not be nil")
	}
	s := &Sampler{probe: probe}
	s.samples = append(s.samples, probe(eng.Now()))
	t, err := sim.NewTicker(eng, period, func(now sim.Time) {
		s.samples = append(s.samples, s.probe(now))
	})
	if err != nil {
		return nil, fmt.Errorf("metrics: start sampler: %w", err)
	}
	s.ticker = t
	return s, nil
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.ticker.Stop() }

// Samples returns the recorded samples (shared slice; callers must not
// mutate it).
func (s *Sampler) Samples() []Sample { return s.samples }

// AvgMemBytes reports the time-averaged memory usage over the samples.
func (s *Sampler) AvgMemBytes() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, sm := range s.samples {
		sum += float64(sm.MemBytes)
	}
	return sum / float64(len(s.samples))
}

// PeakMemBytes reports the maximum sampled memory usage.
func (s *Sampler) PeakMemBytes() int64 {
	var peak int64
	for _, sm := range s.samples {
		if sm.MemBytes > peak {
			peak = sm.MemBytes
		}
	}
	return peak
}

// PeakContainers reports the maximum sampled live-container count.
func (s *Sampler) PeakContainers() int {
	peak := 0
	for _, sm := range s.samples {
		if sm.Containers > peak {
			peak = sm.Containers
		}
	}
	return peak
}

// AvgCPUUtil reports mean CPU utilisation (0..1) across the sampled span
// for a node with the given core count.
func (s *Sampler) AvgCPUUtil(cores float64) float64 {
	if len(s.samples) < 2 || cores <= 0 {
		return 0
	}
	first, last := s.samples[0], s.samples[len(s.samples)-1]
	span := last.T.Sub(first.T).Seconds()
	if span <= 0 {
		return 0
	}
	return (last.BusyCoreSeconds - first.BusyCoreSeconds) / (span * cores)
}

// MiB expresses a byte count in mebibytes.
func MiB(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// GiB expresses a byte count in gibibytes.
func GiB(bytes int64) float64 { return float64(bytes) / (1 << 30) }
