package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Plot renders multiple CDF curves as an ASCII chart with a logarithmic
// x-axis — the shape the paper's latency figures use. Each series is
// drawn with its own marker; overlapping cells show the later series.
type Plot struct {
	title  string
	series []plotSeries
	width  int
	height int
}

// plotSeries is one named curve.
type plotSeries struct {
	name   string
	marker byte
	cdf    CDF
}

// plotMarkers are assigned to series in order.
var plotMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// NewPlot creates an empty plot with the given title and grid size.
// Non-positive dimensions fall back to 64x16.
func NewPlot(title string, width, height int) *Plot {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	return &Plot{title: title, width: width, height: height}
}

// Add appends a named CDF curve. Adding more curves than there are
// distinct markers reuses markers cyclically.
func (p *Plot) Add(name string, cdf CDF) {
	marker := plotMarkers[len(p.series)%len(plotMarkers)]
	p.series = append(p.series, plotSeries{name: name, marker: marker, cdf: cdf})
}

// xRange computes the global non-zero value range across series.
func (p *Plot) xRange() (lo, hi time.Duration) {
	for _, s := range p.series {
		if s.cdf.Len() == 0 {
			continue
		}
		minV, maxV := s.cdf.Min(), s.cdf.Max()
		if minV <= 0 {
			minV = time.Millisecond // log axis floor for zero latencies
		}
		if lo == 0 || minV < lo {
			lo = minV
		}
		if maxV > hi {
			hi = maxV
		}
	}
	if lo == 0 {
		lo = time.Millisecond
	}
	if hi <= lo {
		hi = lo * 10
	}
	return lo, hi
}

// Render writes the chart to w.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("metrics: plot %q has no series", p.title)
	}
	lo, hi := p.xRange()
	logLo, logHi := math.Log10(float64(lo)), math.Log10(float64(hi))
	grid := make([][]byte, p.height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.width))
	}
	// Column x samples the CDF at its right edge, so the final column
	// evaluates the global maximum and every curve reaches 1.0 on-chart.
	for _, s := range p.series {
		if s.cdf.Len() == 0 {
			continue
		}
		for x := 0; x < p.width; x++ {
			exp := logLo + (float64(x)+1)/float64(p.width)*(logHi-logLo)
			v := time.Duration(math.Pow(10, exp))
			if x == p.width-1 {
				v = hi // avoid float round-down clipping the last column
			}
			frac := s.cdf.At(v)
			// Row 0 is the top (fraction 1.0).
			y := int((1 - frac) * float64(p.height-1))
			if y < 0 {
				y = 0
			}
			if y >= p.height {
				y = p.height - 1
			}
			grid[y][x] = s.marker
		}
	}

	var b strings.Builder
	if p.title != "" {
		b.WriteString(p.title)
		b.WriteByte('\n')
	}
	for i, row := range grid {
		frac := 1 - float64(i)/float64(p.height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", frac, string(row))
	}
	// X axis: log-spaced tick labels.
	b.WriteString("     +" + strings.Repeat("-", p.width) + "+\n")
	b.WriteString("      " + p.xAxisLabels(logLo, logHi) + "\n")
	legend := make([]string, 0, len(p.series))
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.marker, s.name))
	}
	b.WriteString("      " + strings.Join(legend, "   ") + "\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("metrics: render plot: %w", err)
	}
	return nil
}

// xAxisLabels formats log-spaced duration labels under the axis.
func (p *Plot) xAxisLabels(logLo, logHi float64) string {
	const ticks = 4
	row := []byte(strings.Repeat(" ", p.width))
	for t := 0; t <= ticks; t++ {
		exp := logLo + float64(t)/ticks*(logHi-logLo)
		label := compactDuration(time.Duration(math.Pow(10, exp)))
		pos := int(float64(t) / ticks * float64(p.width-1))
		start := pos - len(label)/2
		if start < 0 {
			start = 0
		}
		if start+len(label) > p.width {
			start = p.width - len(label)
		}
		copy(row[start:], label)
	}
	return string(row)
}

// compactDuration renders a duration with one significant decimal at most.
func compactDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.0fs", math.Round(d.Seconds()))
	case d >= time.Millisecond:
		return fmt.Sprintf("%.0fms", math.Round(float64(d)/float64(time.Millisecond)))
	default:
		return fmt.Sprintf("%.0fus", math.Round(float64(d)/float64(time.Microsecond)))
	}
}

// PlotCDFs is a convenience wrapper: build and render one chart from
// named curves, sorted-stable in the given order.
func PlotCDFs(w io.Writer, title string, names []string, cdfs map[string]CDF) error {
	plot := NewPlot(title, 0, 0)
	ordered := append([]string(nil), names...)
	if len(ordered) == 0 {
		for name := range cdfs {
			ordered = append(ordered, name)
		}
		sort.Strings(ordered)
	}
	for _, name := range ordered {
		cdf, ok := cdfs[name]
		if !ok {
			return fmt.Errorf("metrics: plot series %q missing", name)
		}
		plot.Add(name, cdf)
	}
	return plot.Render(w)
}
