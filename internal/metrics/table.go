package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned plain-text tables for the figure and table
// reproductions printed by cmd/faasbench.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("metrics: render table: %w", err)
	}
	return nil
}
