// Package policy defines the scheduler interface of the simulated
// serverless platform and implements the paper's three baselines:
//
//   - Vanilla — one container per in-flight invocation with warm reuse,
//     the model adopted by most serverless frameworks (§IV).
//   - SFS — Vanilla placement plus a user-space core scheduler that
//     favours short functions (installed as the node's MLFQ discipline)
//     and per-invocation scheduler overhead (§IV, [23]).
//   - Kraken — SLO/slack-driven batching: invocations queue inside a
//     bounded number of containers and execute sequentially, with an
//     EWMA-predicted provisioner pre-warming containers per window (§IV,
//     [16]).
//
// The FaaSBatch scheduler itself lives in internal/core; it implements the
// same Scheduler interface.
package policy

import (
	"fmt"
	"time"

	"faasbatch/internal/cpusched"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
)

// Scheduler routes invocations to containers.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Submit delivers one invocation. complete fires (in virtual time)
	// once the invocation finished and its latency record is final.
	Submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation))
	// Close releases scheduler resources (timers). The scheduler must not
	// be used after Close.
	Close() error
}

// Env bundles the simulation fixtures a scheduler operates on.
type Env struct {
	// Eng is the discrete-event engine.
	Eng *sim.Engine
	// Node is the worker VM.
	Node *node.Node
	// Runner executes invocations inside containers.
	Runner *fnruntime.Runner
}

// validate checks the environment is complete.
func (e Env) validate() error {
	if e.Eng == nil || e.Node == nil || e.Runner == nil {
		return fmt.Errorf("policy: env requires engine, node and runner")
	}
	return nil
}

// Vanilla launches an isolated container for each invocation, reusing a
// keep-alive container when one is idle.
type Vanilla struct {
	env Env
}

var _ Scheduler = (*Vanilla)(nil)

// NewVanilla creates the Vanilla scheduler.
func NewVanilla(env Env) (*Vanilla, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	return &Vanilla{env: env}, nil
}

// Name implements Scheduler.
func (v *Vanilla) Name() string { return "vanilla" }

// Close implements Scheduler.
func (v *Vanilla) Close() error { return nil }

// Submit implements Scheduler: acquire a container (warm or cold), run the
// single invocation, release the container back to the warm pool.
func (v *Vanilla) Submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation)) {
	submitOnePerContainer(v.env, inv, complete)
}

// maxRetriesOnePerContainer bounds retries after container faults on the
// Vanilla/SFS path, mirroring core.DefaultConfig().MaxRetries so the
// fault-rate sweep compares equal retry budgets across policies.
const maxRetriesOnePerContainer = 3

// submitOnePerContainer is the shared Vanilla/SFS dispatch path.
func submitOnePerContainer(env Env, inv *fnruntime.Invocation, complete func(*fnruntime.Invocation)) {
	issued := env.Eng.Now()
	env.Node.Acquire(inv.Spec.Name, node.AcquireOptions{}, func(r node.AcquireResult) {
		// Scheduling latency: decision plus engine-queue wait; the boot
		// itself is accounted separately as cold start (§IV).
		inv.Rec.Sched = issued.Sub(inv.Arrive) + r.QueueWait
		inv.Rec.Cold = r.BootTime
		err := env.Runner.Execute(inv, r.Container, func(done *fnruntime.Invocation) {
			r.Container.ReturnThread() // release the acquisition reservation
			complete(done)
		})
		if err != nil {
			// The container was torn down (or crashed, under fault
			// injection) between acquisition and execution: retry on a
			// fresh container within the bounded budget rather than drop
			// the invocation.
			r.Container.ReturnThread()
			if inv.Attempts >= maxRetriesOnePerContainer {
				inv.Rec.Failed = true
				complete(inv)
				return
			}
			inv.Attempts++
			inv.Rec.Retries = inv.Attempts
			submitOnePerContainer(env, inv, complete)
		}
	})
}

// SFSConfig parameterises the SFS port.
type SFSConfig struct {
	// SchedOverhead is the CPU cost of SFS's user-space scheduler per
	// invocation (PID transfer plus bookkeeping).
	SchedOverhead time.Duration
	// Adaptive enables SFS's adaptive time slices: the MLFQ base quantum
	// tracks the observed request inter-arrival time ([23]: "dynamically
	// perceiving IaT of requests and assigning an adaptive size of time
	// slices"). Requires the node to run the MLFQ discipline.
	Adaptive bool
	// MinQuantum and MaxQuantum clamp the adaptive base quantum.
	MinQuantum, MaxQuantum time.Duration
	// AdaptEvery sets how many arrivals pass between quantum updates.
	AdaptEvery int
}

// DefaultSFSConfig returns the port defaults.
func DefaultSFSConfig() SFSConfig {
	return SFSConfig{
		SchedOverhead: 2 * time.Millisecond,
		Adaptive:      true,
		MinQuantum:    10 * time.Millisecond,
		MaxQuantum:    200 * time.Millisecond,
		AdaptEvery:    16,
	}
}

// SFS wraps Vanilla placement with the SFS user-space scheduler: the
// node must be constructed with the MLFQ discipline (the experiment
// harness does this), and each invocation pays a scheduler overhead on a
// dedicated CPU group before dispatch.
type SFS struct {
	env        Env
	cfg        SFSConfig
	schedGroup *cpusched.Group
	mlfq       *cpusched.MLFQ // nil when the node runs another discipline
	iat        *EWMA
	lastArrive sim.Time
	arrivals   int
}

var _ Scheduler = (*SFS)(nil)

// NewSFS creates the SFS scheduler.
func NewSFS(env Env, cfg SFSConfig) (*SFS, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if cfg.SchedOverhead < 0 {
		return nil, fmt.Errorf("policy: sfs scheduler overhead must be non-negative, got %v", cfg.SchedOverhead)
	}
	if cfg.Adaptive {
		if cfg.MinQuantum <= 0 || cfg.MaxQuantum < cfg.MinQuantum {
			return nil, fmt.Errorf("policy: sfs adaptive quanta invalid: min %v max %v", cfg.MinQuantum, cfg.MaxQuantum)
		}
		if cfg.AdaptEvery <= 0 {
			return nil, fmt.Errorf("policy: sfs adapt-every must be positive, got %d", cfg.AdaptEvery)
		}
	}
	iat, err := NewEWMA(0.2)
	if err != nil {
		return nil, fmt.Errorf("policy: sfs: %w", err)
	}
	s := &SFS{
		env:        env,
		cfg:        cfg,
		schedGroup: env.Node.Pool().NewGroup("sfs-sched", 0),
		iat:        iat,
	}
	if m, ok := env.Node.Pool().Discipline().(*cpusched.MLFQ); ok {
		s.mlfq = m
	}
	return s, nil
}

// Name implements Scheduler.
func (s *SFS) Name() string { return "sfs" }

// Close implements Scheduler.
func (s *SFS) Close() error { return nil }

// Submit implements Scheduler.
func (s *SFS) Submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation)) {
	s.observeArrival()
	if s.cfg.SchedOverhead <= 0 {
		submitOnePerContainer(s.env, inv, complete)
		return
	}
	s.schedGroup.Submit(s.cfg.SchedOverhead, func() {
		submitOnePerContainer(s.env, inv, complete)
	})
}

// observeArrival feeds the IaT estimator and periodically retunes the
// MLFQ base quantum to track it.
func (s *SFS) observeArrival() {
	now := s.env.Eng.Now()
	if s.arrivals > 0 {
		s.iat.Observe(float64(now.Sub(s.lastArrive)))
	}
	s.lastArrive = now
	s.arrivals++
	if !s.cfg.Adaptive || s.mlfq == nil || !s.iat.Primed() {
		return
	}
	if s.arrivals%s.cfg.AdaptEvery != 0 {
		return
	}
	q := time.Duration(s.iat.Value())
	if q < s.cfg.MinQuantum {
		q = s.cfg.MinQuantum
	}
	if q > s.cfg.MaxQuantum {
		q = s.cfg.MaxQuantum
	}
	if err := s.mlfq.SetBaseQuantum(q); err != nil {
		return // leave the previous quanta in place
	}
	s.env.Node.Pool().Reallocate()
}

// Quantum reports the MLFQ base quantum currently in force (0 when the
// node does not run MLFQ).
func (s *SFS) Quantum() time.Duration {
	if s.mlfq == nil {
		return 0
	}
	return s.mlfq.BaseQuantum()
}
