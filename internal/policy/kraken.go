package policy

import (
	"fmt"
	"math"
	"time"

	"faasbatch/internal/fnruntime"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
)

// KrakenConfig parameterises the Kraken port (§IV).
type KrakenConfig struct {
	// SLO maps function names to their latency objective. Following the
	// paper's fair-comparison setup, the experiment harness fills this
	// with the p98 latency of each function observed under Vanilla.
	SLO map[string]time.Duration
	// DefaultSLO applies to functions missing from SLO.
	DefaultSLO time.Duration
	// Window is the provisioning interval at which the EWMA predictor
	// runs.
	Window time.Duration
	// EWMAAlpha is the predictor's smoothing factor.
	EWMAAlpha float64
	// Oracle, when set, replaces the EWMA prediction with the last
	// window's actual arrival count (the paper sets prediction accuracy
	// to 100%; see DESIGN.md for the persistence-forecast deviation).
	Oracle bool
	// InitialExecEstimate seeds the per-function execution-time estimate
	// before the first completion is observed.
	InitialExecEstimate time.Duration
	// MaxBatch caps how many invocations one container's batch may hold,
	// regardless of slack. The original Kraken bounds batch sizes by
	// profiled container throughput; the default reproduces the paper's
	// observed ~5 invocations per Kraken container (§V-B2).
	MaxBatch int
	// ReuseWarm parks drained batch containers in the node's keep-alive
	// pool instead of terminating them. The paper's Kraken provisions a
	// fresh container per batch (400 I/O invocations / 76 containers),
	// so termination is the default.
	ReuseWarm bool
}

// DefaultKrakenConfig returns the port defaults.
func DefaultKrakenConfig() KrakenConfig {
	return KrakenConfig{
		DefaultSLO:          time.Second,
		Window:              200 * time.Millisecond,
		EWMAAlpha:           0.5,
		Oracle:              true,
		InitialExecEstimate: 100 * time.Millisecond,
		MaxBatch:            5,
	}
}

// Kraken batches invocations into a bounded number of containers using
// SLO slack: a container accepts up to floor(SLO / execEstimate) queued
// invocations, which then execute sequentially (hence Kraken's
// characteristic queuing latency, Fig. 11c/12c). An EWMA-driven
// provisioner pre-warms containers each window.
type Kraken struct {
	env    Env
	cfg    KrakenConfig
	fns    map[string]*krakenFn
	order  []string
	ticker *sim.Ticker
	seq    int
}

var _ Scheduler = (*Kraken)(nil)

// krakenFn is the per-function batching state.
type krakenFn struct {
	name       string
	slo        time.Duration
	execEst    *EWMA
	predictor  *EWMA
	arrivals   int // arrivals in the current window
	containers []*krakenContainer
}

// krakenContainer wraps one container's sequential batch queue.
type krakenContainer struct {
	id      int
	fn      *krakenFn
	c       *node.Container
	ready   bool
	readyAt sim.Time
	running bool
	queue   []*krakenItem
}

// krakenItem is one queued invocation.
type krakenItem struct {
	inv      *fnruntime.Invocation
	complete func(*fnruntime.Invocation)
	issued   sim.Time
}

// NewKraken creates the Kraken scheduler.
func NewKraken(env Env, cfg KrakenConfig) (*Kraken, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if cfg.DefaultSLO <= 0 {
		return nil, fmt.Errorf("policy: kraken default SLO must be positive, got %v", cfg.DefaultSLO)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("policy: kraken window must be positive, got %v", cfg.Window)
	}
	if cfg.InitialExecEstimate <= 0 {
		return nil, fmt.Errorf("policy: kraken initial exec estimate must be positive, got %v", cfg.InitialExecEstimate)
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		return nil, fmt.Errorf("policy: kraken ewma alpha must be in (0, 1], got %v", cfg.EWMAAlpha)
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("policy: kraken max batch must be at least 1, got %d", cfg.MaxBatch)
	}
	k := &Kraken{env: env, cfg: cfg, fns: make(map[string]*krakenFn)}
	t, err := sim.NewTicker(env.Eng, cfg.Window, func(sim.Time) { k.provision() })
	if err != nil {
		return nil, fmt.Errorf("policy: kraken: %w", err)
	}
	k.ticker = t
	return k, nil
}

// Name implements Scheduler.
func (k *Kraken) Name() string { return "kraken" }

// Close implements Scheduler.
func (k *Kraken) Close() error {
	k.ticker.Stop()
	// Release reservations of ready idle containers so the node can park
	// and eventually evict them.
	for _, name := range k.order {
		fn := k.fns[name]
		kept := fn.containers[:0]
		for _, kc := range fn.containers {
			if kc.ready && !kc.running && len(kc.queue) == 0 {
				kc.c.ReturnThread()
			} else {
				kept = append(kept, kc)
			}
		}
		fn.containers = kept
	}
	return nil
}

// fnState returns (creating if needed) the batching state for a function.
func (k *Kraken) fnState(name string) *krakenFn {
	if fn, ok := k.fns[name]; ok {
		return fn
	}
	slo := k.cfg.DefaultSLO
	if s, ok := k.cfg.SLO[name]; ok && s > 0 {
		slo = s
	}
	exec, _ := NewEWMA(0.3)             // validated range; cannot fail
	pred, _ := NewEWMA(k.cfg.EWMAAlpha) // alpha validated in NewKraken
	fn := &krakenFn{name: name, slo: slo, execEst: exec, predictor: pred}
	k.fns[name] = fn
	k.order = append(k.order, name)
	return fn
}

// execEstimate reports the current execution-time estimate for fn.
func (k *Kraken) execEstimate(fn *krakenFn) time.Duration {
	if fn.execEst.Primed() {
		return time.Duration(fn.execEst.Value())
	}
	return k.cfg.InitialExecEstimate
}

// batchCapacity reports how many sequential executions fit within the SLO
// slack for fn — Kraken's batch-size parameter.
func (k *Kraken) batchCapacity(fn *krakenFn) int {
	est := k.execEstimate(fn)
	b := int(fn.slo / est)
	if b < 1 {
		b = 1
	}
	if b > k.cfg.MaxBatch {
		b = k.cfg.MaxBatch
	}
	return b
}

// Submit implements Scheduler: place the invocation on a container whose
// queue still meets the SLO, provisioning a new one otherwise.
func (k *Kraken) Submit(inv *fnruntime.Invocation, complete func(*fnruntime.Invocation)) {
	fn := k.fnState(inv.Spec.Name)
	fn.arrivals++
	item := &krakenItem{inv: inv, complete: complete, issued: k.env.Eng.Now()}
	b := k.batchCapacity(fn)
	for _, kc := range fn.containers {
		if kc.load() < b {
			kc.enqueue(k, item)
			return
		}
	}
	kc := k.newContainer(fn)
	kc.enqueue(k, item)
}

// newContainer provisions a fresh Kraken batch container for fn.
func (k *Kraken) newContainer(fn *krakenFn) *krakenContainer {
	k.seq++
	kc := &krakenContainer{id: k.seq, fn: fn}
	fn.containers = append(fn.containers, kc)
	k.env.Node.Acquire(fn.name, node.AcquireOptions{}, func(r node.AcquireResult) {
		kc.c = r.Container
		kc.ready = true
		kc.readyAt = k.env.Eng.Now()
		// Attribute the engine-queue wait and boot to the first queued
		// invocation — the one whose arrival triggered the provisioning.
		if len(kc.queue) > 0 {
			first := kc.queue[0]
			first.inv.Rec.Sched = first.issued.Sub(first.inv.Arrive) + r.QueueWait
			first.inv.Rec.Cold = r.BootTime
		}
		kc.drain(k)
	})
	return kc
}

// load reports the container's queued plus running invocations.
func (kc *krakenContainer) load() int {
	n := len(kc.queue)
	if kc.running {
		n++
	}
	return n
}

// enqueue adds an item and starts draining when the container is ready.
func (kc *krakenContainer) enqueue(k *Kraken, item *krakenItem) {
	if item.inv.Rec.Sched == 0 && kc.ready {
		item.inv.Rec.Sched = k.env.Eng.Now().Sub(item.inv.Arrive)
	}
	kc.queue = append(kc.queue, item)
	if kc.ready && !kc.running {
		kc.drain(k)
	}
}

// drain runs the queue sequentially: one invocation at a time, the
// paper's "batched invocations queue inside the container" behaviour.
func (kc *krakenContainer) drain(k *Kraken) {
	if kc.running || !kc.ready {
		return
	}
	if len(kc.queue) == 0 {
		return
	}
	item := kc.queue[0]
	kc.queue = kc.queue[1:]
	kc.running = true
	// Queuing latency: from dispatch (or container readiness, for items
	// that waited out the boot) to execution start.
	queueFrom := item.issued
	if kc.readyAt > queueFrom {
		queueFrom = kc.readyAt
	}
	item.inv.Rec.Queue = k.env.Eng.Now().Sub(queueFrom)
	err := k.env.Runner.Execute(item.inv, kc.c, func(done *fnruntime.Invocation) {
		kc.fn.execEst.Observe(float64(done.Rec.Exec))
		kc.running = false
		item.complete(done)
		if len(kc.queue) > 0 {
			kc.drain(k)
			return
		}
		// Batch finished: release the container to the warm pool and
		// retire this batch handle.
		kc.release(k)
	})
	if err != nil {
		// Execution can only fail on an evicted container; retire the
		// handle and resubmit the queue through the scheduler.
		kc.running = false
		items := append([]*krakenItem{item}, kc.queue...)
		kc.queue = nil
		kc.retire(k)
		for _, it := range items {
			k.Submit(it.inv, it.complete)
		}
	}
}

// release retires the handle, terminating the container (scale-in) or
// parking it warm per configuration.
func (kc *krakenContainer) release(k *Kraken) {
	if k.cfg.ReuseWarm {
		kc.c.ReturnThread()
	} else {
		kc.c.Terminate()
	}
	kc.retire(k)
}

// retire removes the handle from its function's container list.
func (kc *krakenContainer) retire(k *Kraken) {
	list := kc.fn.containers
	for i, other := range list {
		if other == kc {
			kc.fn.containers = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// provision runs once per window: fold the window's arrivals into the
// predictor and pre-warm containers for the predicted load.
func (k *Kraken) provision() {
	for _, name := range k.order {
		fn := k.fns[name]
		// Release pre-warmed handles that went unused this window; the
		// containers return to the node's keep-alive pool, so reacquiring
		// them is a warm start.
		for _, kc := range append([]*krakenContainer(nil), fn.containers...) {
			if kc.ready && !kc.running && len(kc.queue) == 0 {
				kc.release(k)
			}
		}
		arrived := fn.arrivals
		fn.arrivals = 0
		fn.predictor.Observe(float64(arrived))
		predicted := fn.predictor.Value()
		if k.cfg.Oracle {
			predicted = float64(arrived)
		}
		if predicted <= 0 {
			continue
		}
		b := k.batchCapacity(fn)
		want := int(math.Ceil(predicted / float64(b)))
		// Warm keep-alive containers satisfy demand instantly; only the
		// shortfall is pre-provisioned.
		have := len(fn.containers) + k.env.Node.WarmCount(fn.name)
		for i := have; i < want; i++ {
			k.newContainer(fn)
		}
	}
}
