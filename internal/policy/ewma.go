package policy

import "fmt"

// EWMA is an exponentially weighted moving average, the workload
// predictor Kraken provisions containers with.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA creates an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("policy: ewma alpha must be in (0, 1], got %v", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds a new observation into the average. The first observation
// primes the average directly.
func (e *EWMA) Observe(v float64) {
	if !e.primed {
		e.value = v
		e.primed = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value reports the current average (0 before the first observation).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation was folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Reset discards the history: the next Observe primes the average afresh.
// Callers use it when the observed process provably restarted (e.g. an
// arrival stream resuming after a long idle gap), where folding the gap
// in would let one stale outlier dominate the estimate for many samples.
func (e *EWMA) Reset() {
	e.value = 0
	e.primed = false
}
