package policy

import (
	"testing"
	"time"

	"faasbatch/internal/cpusched"
	"faasbatch/internal/fnruntime"
	"faasbatch/internal/metrics"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// testEnv builds an Env over a small node.
func testEnv(t *testing.T, disc cpusched.Discipline) Env {
	t.Helper()
	eng := sim.New(1)
	cfg := node.DefaultConfig()
	cfg.Cores = 8
	cfg.Discipline = disc
	cfg.CreateConcurrency = 2
	cfg.CreateCPUWork = 100 * time.Millisecond
	cfg.ContainerInitCPUWork = 0
	cfg.ColdStartLatency = 400 * time.Millisecond
	cfg.KeepAlive = time.Hour
	n, err := node.New(eng, cfg)
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return Env{Eng: eng, Node: n, Runner: fnruntime.NewRunner(eng)}
}

func fibSpec(t *testing.T, n int) workload.Spec {
	t.Helper()
	s, err := workload.FibSpec(n)
	if err != nil {
		t.Fatalf("FibSpec(%d): %v", n, err)
	}
	return s
}

// runAll submits invocations at their arrival offsets and steps the engine
// until all complete. Returns the final records.
func runAll(t *testing.T, env Env, s Scheduler, specs []workload.Spec, offsets []time.Duration) []metrics.Record {
	t.Helper()
	if len(specs) != len(offsets) {
		t.Fatal("specs/offsets length mismatch")
	}
	var recs []metrics.Record
	for i := range specs {
		i := i
		env.Eng.Schedule(offsets[i], func() {
			inv := fnruntime.NewInvocation(int64(i), specs[i], env.Eng.Now())
			s.Submit(inv, func(done *fnruntime.Invocation) {
				recs = append(recs, done.Rec)
			})
		})
	}
	for len(recs) < len(specs) {
		if !env.Eng.Step() {
			t.Fatalf("engine drained with %d/%d invocations complete", len(recs), len(specs))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return recs
}

func TestEnvValidation(t *testing.T) {
	if _, err := NewVanilla(Env{}); err == nil {
		t.Error("empty env accepted by NewVanilla")
	}
	if _, err := NewSFS(Env{}, DefaultSFSConfig()); err == nil {
		t.Error("empty env accepted by NewSFS")
	}
	if _, err := NewKraken(Env{}, DefaultKrakenConfig()); err == nil {
		t.Error("empty env accepted by NewKraken")
	}
}

func TestVanillaSingleInvocation(t *testing.T) {
	env := testEnv(t, nil)
	v, err := NewVanilla(env)
	if err != nil {
		t.Fatalf("NewVanilla: %v", err)
	}
	if v.Name() != "vanilla" {
		t.Fatalf("Name = %q", v.Name())
	}
	spec := fibSpec(t, 30)
	recs := runAll(t, env, v, []workload.Spec{spec}, []time.Duration{0})
	r := recs[0]
	if r.Sched != 0 {
		t.Errorf("Sched = %v, want 0 (free engine slot)", r.Sched)
	}
	// Boot: 100ms create work + 400ms latency.
	if r.Cold < 499*time.Millisecond || r.Cold > 501*time.Millisecond {
		t.Errorf("Cold = %v, want ~500ms", r.Cold)
	}
	if r.Queue != 0 {
		t.Errorf("Queue = %v, want 0 (vanilla never queues)", r.Queue)
	}
	if diff := r.Exec - spec.Work; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Exec = %v, want ~%v", r.Exec, spec.Work)
	}
}

func TestVanillaWarmReuseAcrossSequentialInvocations(t *testing.T) {
	env := testEnv(t, nil)
	v, err := NewVanilla(env)
	if err != nil {
		t.Fatalf("NewVanilla: %v", err)
	}
	spec := fibSpec(t, 25)
	specs := []workload.Spec{spec, spec}
	// Second arrives well after the first completed.
	recs := runAll(t, env, v, specs, []time.Duration{0, 3 * time.Second})
	if recs[1].Cold != 0 {
		t.Errorf("second invocation Cold = %v, want 0 (warm reuse)", recs[1].Cold)
	}
	if env.Node.TotalCreated() != 1 {
		t.Errorf("TotalCreated = %d, want 1", env.Node.TotalCreated())
	}
}

func TestVanillaSpawnsContainerPerConcurrentInvocation(t *testing.T) {
	env := testEnv(t, nil)
	v, err := NewVanilla(env)
	if err != nil {
		t.Fatalf("NewVanilla: %v", err)
	}
	spec := fibSpec(t, 30)
	specs := make([]workload.Spec, 10)
	offsets := make([]time.Duration, 10)
	for i := range specs {
		specs[i] = spec
	}
	recs := runAll(t, env, v, specs, offsets)
	if env.Node.TotalCreated() != 10 {
		t.Errorf("TotalCreated = %d, want 10 (one per concurrent invocation)", env.Node.TotalCreated())
	}
	// With CreateConcurrency=2 the engine queue inflates scheduling
	// latency for later invocations.
	cdf := metrics.NewCDF(metrics.Extract(recs, metrics.Scheduling))
	if cdf.Max() < 200*time.Millisecond {
		t.Errorf("max Sched = %v, want creation-queue inflation", cdf.Max())
	}
}

func TestSFSUsesSchedulerOverhead(t *testing.T) {
	env := testEnv(t, cpusched.NewMLFQ())
	s, err := NewSFS(env, SFSConfig{SchedOverhead: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewSFS: %v", err)
	}
	if s.Name() != "sfs" {
		t.Fatalf("Name = %q", s.Name())
	}
	spec := fibSpec(t, 25)
	recs := runAll(t, env, s, []workload.Spec{spec}, []time.Duration{0})
	// The 5ms overhead delays the acquire, so it lands in Sched.
	if recs[0].Sched < 4*time.Millisecond {
		t.Errorf("Sched = %v, want >= ~5ms scheduler overhead", recs[0].Sched)
	}
}

func TestSFSZeroOverheadBehavesLikeVanilla(t *testing.T) {
	env := testEnv(t, cpusched.NewMLFQ())
	s, err := NewSFS(env, SFSConfig{})
	if err != nil {
		t.Fatalf("NewSFS: %v", err)
	}
	spec := fibSpec(t, 25)
	recs := runAll(t, env, s, []workload.Spec{spec}, []time.Duration{0})
	if recs[0].Sched != 0 {
		t.Errorf("Sched = %v, want 0", recs[0].Sched)
	}
}

func TestSFSConfigValidation(t *testing.T) {
	env := testEnv(t, cpusched.NewMLFQ())
	if _, err := NewSFS(env, SFSConfig{SchedOverhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestSFSShortFunctionsBeatLongUnderLoad(t *testing.T) {
	// SFS's point: under a mix of long and short functions on a loaded
	// node, short functions finish close to their solo time while long
	// ones pay. Compare the short function's exec latency under MLFQ vs
	// FairShare with an identical workload.
	shortExec := func(disc cpusched.Discipline) time.Duration {
		env := testEnv(t, disc)
		s, err := NewSFS(env, SFSConfig{})
		if err != nil {
			t.Fatalf("NewSFS: %v", err)
		}
		// Node has 8 cores; 12 long functions saturate it, one short
		// function arrives after they are running.
		long := fibSpec(t, 33) // ~1.3s
		short := fibSpec(t, 22)
		specs := make([]workload.Spec, 0, 13)
		offsets := make([]time.Duration, 0, 13)
		for i := 0; i < 12; i++ {
			specs = append(specs, long)
			offsets = append(offsets, 0)
		}
		specs = append(specs, short)
		offsets = append(offsets, 1200*time.Millisecond) // containers warm-ish, node busy
		recs := runAll(t, env, s, specs, offsets)
		for _, r := range recs {
			if r.Fn == short.Name {
				return r.Exec
			}
		}
		t.Fatal("short record not found")
		return 0
	}
	mlfq := shortExec(cpusched.NewMLFQ())
	fair := shortExec(cpusched.FairShare{})
	if mlfq >= fair {
		t.Errorf("short exec under MLFQ = %v not better than FairShare = %v", mlfq, fair)
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Error("alpha 1.5 accepted")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatalf("NewEWMA: %v", err)
	}
	if e.Primed() || e.Value() != 0 {
		t.Fatal("fresh EWMA should be unprimed/zero")
	}
	e.Observe(10)
	if !e.Primed() || e.Value() != 10 {
		t.Fatalf("after first observation: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Fatal("reset EWMA should be unprimed/zero")
	}
	e.Observe(7)
	if !e.Primed() || e.Value() != 7 {
		t.Fatalf("post-reset observation should re-prime directly, got %v", e.Value())
	}
}

func TestKrakenConfigValidation(t *testing.T) {
	env := testEnv(t, nil)
	bad := []func(*KrakenConfig){
		func(c *KrakenConfig) { c.DefaultSLO = 0 },
		func(c *KrakenConfig) { c.Window = 0 },
		func(c *KrakenConfig) { c.InitialExecEstimate = 0 },
		func(c *KrakenConfig) { c.EWMAAlpha = 0 },
		func(c *KrakenConfig) { c.EWMAAlpha = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultKrakenConfig()
		mutate(&cfg)
		if _, err := NewKraken(env, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestKrakenBatchesSequentially(t *testing.T) {
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.DefaultSLO = 10 * time.Second // huge slack -> one container
	cfg.InitialExecEstimate = 300 * time.Millisecond
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	if k.Name() != "kraken" {
		t.Fatalf("Name = %q", k.Name())
	}
	spec := fibSpec(t, 30) // ~309ms
	specs := make([]workload.Spec, 5)
	offsets := make([]time.Duration, 5)
	for i := range specs {
		specs[i] = spec
	}
	recs := runAll(t, env, k, specs, offsets)
	if env.Node.TotalCreated() != 1 {
		t.Fatalf("TotalCreated = %d, want 1 (all batched)", env.Node.TotalCreated())
	}
	// Sequential execution: queuing latency must grow across the batch.
	queued := 0
	var maxQueue time.Duration
	for _, r := range recs {
		if r.Queue > 0 {
			queued++
		}
		if r.Queue > maxQueue {
			maxQueue = r.Queue
		}
	}
	if queued < 3 {
		t.Errorf("only %d records show queuing, want most of the batch", queued)
	}
	// The last of five sequential ~309ms runs waits ~4*309ms.
	if maxQueue < 900*time.Millisecond {
		t.Errorf("max Queue = %v, want >= ~1.2s of sequential wait", maxQueue)
	}
}

func TestKrakenProvisionsPerSLO(t *testing.T) {
	// Tight SLO: batch capacity 1 -> one container per concurrent
	// invocation, like Vanilla.
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.DefaultSLO = 350 * time.Millisecond
	cfg.InitialExecEstimate = 300 * time.Millisecond
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	spec := fibSpec(t, 30)
	specs := make([]workload.Spec, 4)
	offsets := make([]time.Duration, 4)
	for i := range specs {
		specs[i] = spec
	}
	runAll(t, env, k, specs, offsets)
	if got := env.Node.TotalCreated(); got != 4 {
		t.Fatalf("TotalCreated = %d, want 4 under tight SLO", got)
	}
}

func TestKrakenFewerContainersThanVanillaOnBurst(t *testing.T) {
	burst := func(mk func(Env) Scheduler) int {
		env := testEnv(t, nil)
		s := mk(env)
		spec := fibSpec(t, 28) // ~118ms
		specs := make([]workload.Spec, 20)
		offsets := make([]time.Duration, 20)
		for i := range specs {
			specs[i] = spec
			offsets[i] = time.Duration(i) * 5 * time.Millisecond
		}
		runAll(t, env, s, specs, offsets)
		return env.Node.TotalCreated()
	}
	vanillaContainers := burst(func(env Env) Scheduler {
		v, err := NewVanilla(env)
		if err != nil {
			t.Fatalf("NewVanilla: %v", err)
		}
		return v
	})
	krakenContainers := burst(func(env Env) Scheduler {
		cfg := DefaultKrakenConfig()
		cfg.DefaultSLO = 2 * time.Second
		k, err := NewKraken(env, cfg)
		if err != nil {
			t.Fatalf("NewKraken: %v", err)
		}
		return k
	})
	if krakenContainers >= vanillaContainers {
		t.Fatalf("kraken containers = %d not fewer than vanilla = %d", krakenContainers, vanillaContainers)
	}
}

func TestKrakenPerFunctionSLO(t *testing.T) {
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.SLO = map[string]time.Duration{"fib30": 5 * time.Second}
	cfg.DefaultSLO = time.Second
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	fn := k.fnState("fib30")
	if fn.slo != 5*time.Second {
		t.Fatalf("fib30 slo = %v, want 5s", fn.slo)
	}
	other := k.fnState("fib20")
	if other.slo != time.Second {
		t.Fatalf("fib20 slo = %v, want default 1s", other.slo)
	}
}

func TestKrakenBatchingAvoidsMostColdStarts(t *testing.T) {
	// With a p98-style SLO (several times the exec time), Kraken batches
	// invocations into few containers, so most invocations of a steady
	// stream never pay a cold start.
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.DefaultSLO = 2 * time.Second
	cfg.InitialExecEstimate = 300 * time.Millisecond
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	spec := fibSpec(t, 30)
	const n = 30
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = spec
		offsets[i] = time.Duration(i) * 50 * time.Millisecond // 1.5s stream
	}
	recs := runAll(t, env, k, specs, offsets)
	cold := 0
	for _, r := range recs {
		if r.Cold > 0 {
			cold++
		}
	}
	if cold >= n/2 {
		t.Errorf("%d/%d invocations paid cold start; prewarming ineffective", cold, n)
	}
}

func TestKrakenCloseReleasesIdleHandles(t *testing.T) {
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	spec := fibSpec(t, 25)
	recs := runAll(t, env, k, []workload.Spec{spec}, []time.Duration{0})
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	// After Close (called by runAll), no handle should pin a container:
	// the node can evict everything idle.
	env.Node.EvictIdle()
	if env.Node.LiveContainers() != 0 {
		t.Fatalf("LiveContainers = %d after close+evict, want 0", env.Node.LiveContainers())
	}
}

func TestKrakenTerminatesBatchContainersByDefault(t *testing.T) {
	// Default Kraken retires each batch container (scale-in), so serving
	// two well-separated invocations provisions two containers.
	env := testEnv(t, nil)
	k, err := NewKraken(env, DefaultKrakenConfig())
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	spec := fibSpec(t, 25)
	runAll(t, env, k, []workload.Spec{spec, spec}, []time.Duration{0, 3 * time.Second})
	if got := env.Node.TotalCreated(); got != 2 {
		t.Fatalf("TotalCreated = %d, want 2 (fresh container per batch)", got)
	}
	if env.Node.LiveContainers() != 0 {
		t.Fatalf("LiveContainers = %d, want 0 after terminations", env.Node.LiveContainers())
	}
}

func TestKrakenReuseWarmKeepsContainers(t *testing.T) {
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.ReuseWarm = true
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	spec := fibSpec(t, 25)
	runAll(t, env, k, []workload.Spec{spec, spec}, []time.Duration{0, 3 * time.Second})
	if got := env.Node.TotalCreated(); got != 1 {
		t.Fatalf("TotalCreated = %d, want 1 with warm reuse", got)
	}
}

func TestKrakenMaxBatchValidation(t *testing.T) {
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.MaxBatch = 0
	if _, err := NewKraken(env, cfg); err == nil {
		t.Fatal("MaxBatch=0 accepted")
	}
}

func TestKrakenMaxBatchCapsCapacity(t *testing.T) {
	env := testEnv(t, nil)
	cfg := DefaultKrakenConfig()
	cfg.DefaultSLO = time.Hour // slack would allow thousands
	cfg.MaxBatch = 3
	k, err := NewKraken(env, cfg)
	if err != nil {
		t.Fatalf("NewKraken: %v", err)
	}
	fn := k.fnState("f")
	if got := k.batchCapacity(fn); got != 3 {
		t.Fatalf("batchCapacity = %d, want capped at 3", got)
	}
}

func TestSFSAdaptiveQuantumTracksIaT(t *testing.T) {
	env := testEnv(t, cpusched.NewMLFQ())
	cfg := DefaultSFSConfig()
	cfg.SchedOverhead = 0
	cfg.AdaptEvery = 4
	s, err := NewSFS(env, cfg)
	if err != nil {
		t.Fatalf("NewSFS: %v", err)
	}
	before := s.Quantum()
	spec := fibSpec(t, 22)
	// A steady 120ms inter-arrival stream should pull the base quantum
	// toward ~120ms (from the 50ms default).
	const n = 24
	specs := make([]workload.Spec, n)
	offsets := make([]time.Duration, n)
	for i := range specs {
		specs[i] = spec
		offsets[i] = time.Duration(i) * 120 * time.Millisecond
	}
	runAll(t, env, s, specs, offsets)
	after := s.Quantum()
	if after <= before {
		t.Fatalf("quantum %v did not grow from %v toward the 120ms IaT", after, before)
	}
	if after < 80*time.Millisecond || after > 200*time.Millisecond {
		t.Fatalf("quantum = %v, want near the 120ms IaT", after)
	}
}

func TestSFSAdaptiveValidation(t *testing.T) {
	env := testEnv(t, cpusched.NewMLFQ())
	cfg := DefaultSFSConfig()
	cfg.MinQuantum = 0
	if _, err := NewSFS(env, cfg); err == nil {
		t.Error("MinQuantum=0 accepted")
	}
	cfg = DefaultSFSConfig()
	cfg.MaxQuantum = cfg.MinQuantum - 1
	if _, err := NewSFS(env, cfg); err == nil {
		t.Error("MaxQuantum < MinQuantum accepted")
	}
	cfg = DefaultSFSConfig()
	cfg.AdaptEvery = 0
	if _, err := NewSFS(env, cfg); err == nil {
		t.Error("AdaptEvery=0 accepted")
	}
}

func TestSFSQuantumZeroWithoutMLFQ(t *testing.T) {
	env := testEnv(t, cpusched.FairShare{})
	s, err := NewSFS(env, DefaultSFSConfig())
	if err != nil {
		t.Fatalf("NewSFS: %v", err)
	}
	if s.Quantum() != 0 {
		t.Fatalf("Quantum = %v on a fair-share node, want 0", s.Quantum())
	}
	// Arrivals must not panic or adapt anything.
	spec := fibSpec(t, 22)
	runAll(t, env, s, []workload.Spec{spec, spec}, []time.Duration{0, 50 * time.Millisecond})
}
