package fnruntime

import (
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// env bundles the common simulation fixtures.
type env struct {
	eng    *sim.Engine
	node   *node.Node
	runner *Runner
}

func newEnv(t *testing.T) *env {
	t.Helper()
	eng := sim.New(1)
	cfg := node.DefaultConfig()
	cfg.Cores = 8
	cfg.ContainerInitCPUWork = 0 // isolate execution timing from boot
	cfg.KeepAlive = time.Hour    // keep containers out of the way
	n, err := node.New(eng, cfg)
	if err != nil {
		t.Fatalf("node.New: %v", err)
	}
	return &env{eng: eng, node: n, runner: NewRunner(eng)}
}

// acquire obtains a fresh container synchronously-ish for tests.
func (e *env) acquire(t *testing.T, fn string, opts node.AcquireOptions) *node.Container {
	t.Helper()
	var c *node.Container
	e.node.Acquire(fn, opts, func(r node.AcquireResult) { c = r.Container })
	e.eng.Run()
	if c == nil {
		t.Fatal("acquire never completed")
	}
	return c
}

func mustSpec(t *testing.T, n int) workload.Spec {
	t.Helper()
	s, err := workload.FibSpec(n)
	if err != nil {
		t.Fatalf("FibSpec(%d): %v", n, err)
	}
	return s
}

func TestExecuteCPUFunction(t *testing.T) {
	e := newEnv(t)
	c := e.acquire(t, "fib30", node.AcquireOptions{})
	spec := mustSpec(t, 30)
	inv := NewInvocation(1, spec, e.eng.Now())
	var done *Invocation
	if err := e.runner.Execute(inv, c, func(i *Invocation) { done = i }); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	e.eng.Run()
	if done == nil {
		t.Fatal("onDone never fired")
	}
	// Alone on 8 cores the fib runs at full speed.
	if diff := done.Rec.Exec - spec.Work; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("Exec = %v, want ~%v", done.Rec.Exec, spec.Work)
	}
	if got := e.runner.Stats().Executed; got != 1 {
		t.Fatalf("Executed = %d, want 1", got)
	}
}

func TestNewInvocationInitialisesRecord(t *testing.T) {
	spec := workload.IOSpec("s3func")
	inv := NewInvocation(7, spec, sim.Time(3*time.Second))
	if inv.Rec.ID != 7 || inv.Rec.Fn != "s3func" || inv.Rec.Arrive != sim.Time(3*time.Second) {
		t.Fatalf("record = %+v", inv.Rec)
	}
}

func TestExecuteValidation(t *testing.T) {
	e := newEnv(t)
	c := e.acquire(t, "f", node.AcquireOptions{})
	if err := e.runner.Execute(nil, c, func(*Invocation) {}); err == nil {
		t.Error("nil invocation accepted")
	}
	inv := NewInvocation(1, mustSpec(t, 20), 0)
	if err := e.runner.Execute(inv, nil, func(*Invocation) {}); err == nil {
		t.Error("nil container accepted")
	}
}

func TestExecuteIOFunctionWithoutMultiplexer(t *testing.T) {
	e := newEnv(t)
	c := e.acquire(t, "s3func", node.AcquireOptions{})
	spec := workload.IOSpec("s3func")
	inv := NewInvocation(1, spec, e.eng.Now())
	var done *Invocation
	if err := e.runner.Execute(inv, c, func(i *Invocation) { done = i }); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	e.eng.Run()
	if done == nil {
		t.Fatal("onDone never fired")
	}
	// Exec = creation (66ms, alone) + IO wait (15ms) + compute (2ms).
	want := 83 * time.Millisecond
	if diff := done.Rec.Exec - want; diff < -2*time.Millisecond || diff > 2*time.Millisecond {
		t.Fatalf("Exec = %v, want ~%v", done.Rec.Exec, want)
	}
	st := e.runner.Stats()
	if st.ClientsBuilt != 1 {
		t.Fatalf("ClientsBuilt = %d, want 1", st.ClientsBuilt)
	}
	if st.ClientBytesAllocated != workload.DefaultClientFirstMem {
		t.Fatalf("ClientBytesAllocated = %d", st.ClientBytesAllocated)
	}
	// The transient client was freed when the body returned.
	if c.ClientLive() != 0 {
		t.Fatalf("ClientLive = %d, want 0 after GC", c.ClientLive())
	}
}

func TestConcurrentCreationsContendSuperlinearly(t *testing.T) {
	// Nine concurrent I/O invocations in one container without a
	// multiplexer: creations serialise on the GIL group with a k^alpha
	// penalty, so the last creation completes around 9 * CreationWork(9)
	// ~= 3.2s (Fig. 4), and execution latency spreads out far beyond the
	// uncontended 83ms.
	e := newEnv(t)
	c := e.acquire(t, "s3func", node.AcquireOptions{})
	spec := workload.IOSpec("s3func")
	var lats []time.Duration
	for i := 0; i < 9; i++ {
		inv := NewInvocation(int64(i), spec, e.eng.Now())
		if err := e.runner.Execute(inv, c, func(iv *Invocation) { lats = append(lats, iv.Rec.Exec) }); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	e.eng.Run()
	if len(lats) != 9 {
		t.Fatalf("completed %d, want 9", len(lats))
	}
	var maxLat time.Duration
	for _, l := range lats {
		if l > maxLat {
			maxLat = l
		}
	}
	if maxLat < 2500*time.Millisecond || maxLat > 4200*time.Millisecond {
		t.Fatalf("max exec latency = %v, want ~3.2s (Fig. 4 contention)", maxLat)
	}
	if got := e.runner.Stats().ClientsBuilt; got != 9 {
		t.Fatalf("ClientsBuilt = %d, want 9 (no multiplexer)", got)
	}
}

func TestMultiplexerCollapsesCreationCost(t *testing.T) {
	// The same nine concurrent invocations WITH a multiplexer: one build,
	// eight coalesced waits. Every invocation finishes within the
	// 10-100ms band (Fig. 12c).
	e := newEnv(t)
	c := e.acquire(t, "s3func", node.AcquireOptions{Multiplex: true})
	spec := workload.IOSpec("s3func")
	var lats []time.Duration
	for i := 0; i < 9; i++ {
		inv := NewInvocation(int64(i), spec, e.eng.Now())
		if err := e.runner.Execute(inv, c, func(iv *Invocation) { lats = append(lats, iv.Rec.Exec) }); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	e.eng.Run()
	st := e.runner.Stats()
	if st.ClientsBuilt != 1 {
		t.Fatalf("ClientsBuilt = %d, want 1", st.ClientsBuilt)
	}
	if st.CacheCoalesced != 8 {
		t.Fatalf("CacheCoalesced = %d, want 8", st.CacheCoalesced)
	}
	for _, l := range lats {
		if l < 10*time.Millisecond || l > 100*time.Millisecond {
			t.Fatalf("exec latency %v outside the paper's 10-100ms band", l)
		}
	}
	// Only one instance's memory is live, held by the container.
	if c.ClientLive() != 1 {
		t.Fatalf("ClientLive = %d, want 1 cached instance", c.ClientLive())
	}
}

func TestMultiplexerHitOnLaterWindow(t *testing.T) {
	// A second wave arriving after the first build completed must hit.
	e := newEnv(t)
	c := e.acquire(t, "s3func", node.AcquireOptions{Multiplex: true})
	spec := workload.IOSpec("s3func")
	first := NewInvocation(1, spec, e.eng.Now())
	if err := e.runner.Execute(first, c, func(*Invocation) {}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	e.eng.Run()
	var second *Invocation
	inv := NewInvocation(2, spec, e.eng.Now())
	if err := e.runner.Execute(inv, c, func(i *Invocation) { second = i }); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	e.eng.Run()
	st := e.runner.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", st.CacheHits)
	}
	// Hit path: IO wait + compute only = 17ms.
	want := 17 * time.Millisecond
	if diff := second.Rec.Exec - want; diff < -2*time.Millisecond || diff > 2*time.Millisecond {
		t.Fatalf("hit Exec = %v, want ~%v", second.Rec.Exec, want)
	}
}

func TestExecuteOnEvictedContainerFails(t *testing.T) {
	e := newEnv(t)
	c := e.acquire(t, "f", node.AcquireOptions{})
	c.ReturnThread()
	e.node.EvictIdle()
	inv := NewInvocation(1, mustSpec(t, 20), e.eng.Now())
	if err := e.runner.Execute(inv, c, func(*Invocation) {}); err == nil {
		t.Fatal("Execute on evicted container succeeded, want error")
	}
}

func TestThreadAccountingAcrossBatch(t *testing.T) {
	e := newEnv(t)
	c := e.acquire(t, "fib25", node.AcquireOptions{})
	spec := mustSpec(t, 25)
	const n = 5
	done := 0
	for i := 0; i < n; i++ {
		inv := NewInvocation(int64(i), spec, e.eng.Now())
		if err := e.runner.Execute(inv, c, func(*Invocation) { done++ }); err != nil {
			t.Fatalf("Execute: %v", err)
		}
	}
	// n bodies + 1 acquisition reservation.
	if c.Active() != n+1 {
		t.Fatalf("Active = %d, want %d", c.Active(), n+1)
	}
	e.eng.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if c.Active() != 1 || c.State() != node.Busy {
		t.Fatalf("after batch: active=%d state=%v, want reservation only", c.Active(), c.State())
	}
	if c.Served() != n {
		t.Fatalf("Served = %d, want %d", c.Served(), n)
	}
	c.ReturnThread() // release reservation -> container parks idle
	if c.State() != node.Idle {
		t.Fatalf("state = %v, want idle", c.State())
	}
}

func TestSharingVsMonopolyEquivalence(t *testing.T) {
	// The Fig. 1 motivation: N concurrent fib(30) invocations inside ONE
	// container finish in about the same time as N invocations across N
	// containers, when N does not exceed the cores.
	runSharing := func(n int) time.Duration {
		e := newEnv(t)
		c := e.acquire(t, "fib30", node.AcquireOptions{})
		spec := mustSpec(t, 30)
		start := e.eng.Now()
		var last sim.Time
		for i := 0; i < n; i++ {
			inv := NewInvocation(int64(i), spec, start)
			if err := e.runner.Execute(inv, c, func(*Invocation) { last = e.eng.Now() }); err != nil {
				t.Fatalf("Execute: %v", err)
			}
		}
		e.eng.Run()
		return last.Sub(start)
	}
	runMonopoly := func(n int) time.Duration {
		e := newEnv(t)
		spec := mustSpec(t, 30)
		var containers []*node.Container
		for i := 0; i < n; i++ {
			containers = append(containers, e.acquire(t, "f", node.AcquireOptions{}))
		}
		start := e.eng.Now()
		var last sim.Time
		for i := 0; i < n; i++ {
			inv := NewInvocation(int64(i), spec, start)
			if err := e.runner.Execute(inv, containers[i], func(*Invocation) { last = e.eng.Now() }); err != nil {
				t.Fatalf("Execute: %v", err)
			}
		}
		e.eng.Run()
		return last.Sub(start)
	}
	for _, n := range []int{4, 8} {
		s, m := runSharing(n), runMonopoly(n)
		ratio := float64(s) / float64(m)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("n=%d: sharing %v vs monopoly %v (ratio %.2f), want ~1.0", n, s, m, ratio)
		}
	}
}

// Property: for any random mix of CPU and I/O invocations spread over
// time, every completion has a non-negative, additive latency
// decomposition and an execution latency no smaller than the body's CPU
// work (tasks never run faster than one core).
func TestPropertyExecutionInvariants(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		eng := sim.New(seed)
		cfg := node.DefaultConfig()
		cfg.Cores = 4
		cfg.ContainerInitCPUWork = 0
		cfg.KeepAlive = time.Hour
		n, err := node.New(eng, cfg)
		if err != nil {
			return false
		}
		runner := NewRunner(eng)
		ok := true
		completed := 0
		var c *node.Container
		n.Acquire("mix", node.AcquireOptions{Multiplex: true}, func(r node.AcquireResult) { c = r.Container })
		eng.Run()
		if c == nil {
			return false
		}
		for i, r := range raw {
			i, r := i, r
			var spec workload.Spec
			if r%3 == 0 {
				spec = workload.IOSpec("mix")
			} else {
				s, err := workload.FibSpec(20 + int(r)%16)
				if err != nil {
					return false
				}
				s.Name = "mix"
				spec = s
			}
			at := time.Duration(r%500) * time.Millisecond
			eng.Schedule(at, func() {
				inv := NewInvocation(int64(i), spec, eng.Now())
				if err := runner.Execute(inv, c, func(done *Invocation) {
					completed++
					rec := done.Rec
					if rec.Sched < 0 || rec.Cold < 0 || rec.Queue < 0 || rec.Exec <= 0 {
						ok = false
					}
					if rec.Total() != rec.Sched+rec.Cold+rec.Queue+rec.Exec {
						ok = false
					}
					if done.Spec.Client == nil && rec.Exec < done.Spec.Work {
						ok = false // CPU body cannot beat one core
					}
				}); err != nil {
					ok = false
				}
			})
		}
		eng.Run()
		return ok && completed == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
