// Package fnruntime executes function invocations inside containers in the
// discrete-event simulation.
//
// An invocation's body follows the paper's I/O function shape (Listing 1):
//
//  1. Client creation — construct the cloud-storage client. Constructions
//     serialise on the container's runtime lock (GIL group) and cost
//     superlinearly more under concurrency (Fig. 4). Without a Resource
//     Multiplexer every invocation builds its own instance and its memory
//     is released when the invocation returns; with a multiplexer the
//     first build is cached for the container's lifetime and subsequent
//     creations hit the cache or coalesce onto the in-flight build.
//  2. I/O wait — blocked on storage, no CPU.
//  3. Compute — CPU work in the container's cpuset group (for the fib
//     family this is the whole body).
//
// The runner fills the invocation's execution latency and reports
// aggregate client/cache statistics for the Fig. 12/14 reproductions.
package fnruntime

import (
	"fmt"

	"faasbatch/internal/chaos"
	"faasbatch/internal/metrics"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/node"
	"faasbatch/internal/sim"
	"faasbatch/internal/workload"
)

// Invocation is one function request flowing through the simulation.
type Invocation struct {
	// ID is unique within a run.
	ID int64
	// Spec is the function being invoked.
	Spec workload.Spec
	// Arrive is when the platform received the request.
	Arrive sim.Time
	// Attempts counts scheduling attempts consumed so far; schedulers
	// increment it when they retry after a container fault.
	Attempts int
	// Rec accumulates the latency decomposition. The scheduler fills
	// Sched/Cold/Queue; the runner fills Exec.
	Rec metrics.Record
}

// NewInvocation builds an invocation with its record initialised.
func NewInvocation(id int64, spec workload.Spec, arrive sim.Time) *Invocation {
	return &Invocation{
		ID:     id,
		Spec:   spec,
		Arrive: arrive,
		Rec:    metrics.Record{ID: id, Fn: spec.Name, Arrive: arrive},
	}
}

// Stats aggregates runner-level execution counters.
type Stats struct {
	// Executed counts completed invocations.
	Executed int64
	// CrashRejects counts Execute calls refused because the container
	// crashed or was evicted (the scheduler must retry the invocation).
	CrashRejects int64
	// ClientsBuilt counts actual client constructions performed.
	ClientsBuilt int64
	// ClientBytesAllocated is cumulative client memory charged.
	ClientBytesAllocated int64
	// CacheHits counts creations served from a ready multiplexer entry.
	CacheHits int64
	// CacheCoalesced counts creations that waited on an in-flight build.
	CacheCoalesced int64
	// CacheStaleHits counts creations served a stale instance while this
	// invocation's thread refreshed the entry in the background.
	CacheStaleHits int64
	// CacheNegativeDenials counts creations the negative cache refused
	// during failure backoff; the invocation falls back to a private
	// transient client.
	CacheNegativeDenials int64
}

// Runner executes invocations inside containers.
type Runner struct {
	eng   *sim.Engine
	inj   *chaos.Injector
	stats Stats
}

// NewRunner creates a runner on the given engine.
func NewRunner(eng *sim.Engine) *Runner {
	return &Runner{eng: eng}
}

// SetChaos installs a fault injector on the execution boundary: before an
// invocation enters its container, a ContainerCrash draw may kill the
// container, forcing every scheduler through its retry path. The boundary
// is policy-neutral — Vanilla and FaaSBatch face the same fault stream.
func (r *Runner) SetChaos(inj *chaos.Injector) { r.inj = inj }

// Stats reports the aggregate execution counters.
func (r *Runner) Stats() Stats { return r.stats }

// Execute runs inv inside container c. The invocation occupies a thread
// for its whole body; onDone fires when the body returns, after Rec.Exec
// is set. The caller remains responsible for the container's acquisition
// reservation (ReturnThread on the handle it got from Acquire).
func (r *Runner) Execute(inv *Invocation, c *node.Container, onDone func(*Invocation)) error {
	if inv == nil || c == nil {
		return fmt.Errorf("fnruntime: execute requires an invocation and a container")
	}
	if c.State() == node.Evicted {
		r.stats.CrashRejects++
		return fmt.Errorf("fnruntime: container %s is evicted", c.ID())
	}
	if r.inj.Should(chaos.ContainerCrash) {
		// The container dies as the invocation enters it: this and every
		// later invocation routed to it observe the Evicted state, so a
		// whole in-flight batch fails together (§III-C's single-container
		// mapping concentrates the blast radius).
		c.Crash()
		r.stats.CrashRejects++
		return fmt.Errorf("fnruntime: container %s crashed", c.ID())
	}
	c.CheckoutThread()
	start := r.eng.Now()
	inv.Rec.Container = c.ID()
	finish := func(transientClientBytes int64) {
		inv.Rec.Exec = r.eng.Now().Sub(start)
		if transientClientBytes > 0 {
			// A non-multiplexed client is garbage once the invocation
			// returns.
			c.FreeClientMem(transientClientBytes)
		}
		r.stats.Executed++
		c.ReturnThread()
		onDone(inv)
	}

	if inv.Spec.Client == nil {
		r.runBody(inv, c, 0, finish)
		return nil
	}
	r.acquireClient(inv, c, func(transientBytes int64) {
		r.runBody(inv, c, transientBytes, finish)
	})
	return nil
}

// runBody performs the I/O wait and compute phases, then finishes.
func (r *Runner) runBody(inv *Invocation, c *node.Container, transientBytes int64, finish func(int64)) {
	compute := func() {
		if inv.Spec.Work <= 0 {
			finish(transientBytes)
			return
		}
		c.Group().Submit(inv.Spec.Work, func() { finish(transientBytes) })
	}
	if inv.Spec.IOWait > 0 {
		r.eng.Schedule(inv.Spec.IOWait, compute)
		return
	}
	compute()
}

// acquireClient obtains the storage client: through the container's
// Resource Multiplexer when present, otherwise by building a private
// instance. then receives the transient bytes to free at body end (zero
// when the instance is cached or shared).
func (r *Runner) acquireClient(inv *Invocation, c *node.Container, then func(transientBytes int64)) {
	spec := inv.Spec.Client
	cache := c.Cache()
	if cache == nil {
		r.buildClient(c, spec, func(bytes int64) { then(bytes) })
		return
	}
	key := multiplex.NewKey(spec.Callee, spec.ArgsKey)
	res, _ := cache.Begin(key)
	switch res {
	case multiplex.BeginHit:
		r.stats.CacheHits++
		then(0)
	case multiplex.BeginPending:
		r.stats.CacheCoalesced++
		cache.Wait(key, func(any) { then(0) })
	case multiplex.BeginStale:
		// Stale-while-revalidate: the invocation proceeds on the old
		// instance immediately while the refresh build runs alongside it,
		// paying the usual construction cost on the container's GIL group
		// and replacing the entry (whose old instance's memory is
		// released through the cache's eviction hook) when it lands.
		r.stats.CacheStaleHits++
		r.buildClient(c, spec, func(bytes int64) {
			cache.Complete(key, struct{}{}, bytes)
		})
		then(0)
	case multiplex.BeginNegative:
		// The negative cache is absorbing this key's recent build
		// failures: fall back to a private transient client rather than
		// hammering the shared entry, mirroring the live platform's
		// degraded path. The instance is garbage at body end.
		r.stats.CacheNegativeDenials++
		r.buildClient(c, spec, func(bytes int64) { then(bytes) })
	default: // BeginMiss: we are the builder
		r.buildClient(c, spec, func(bytes int64) {
			// The built instance lives until the cache evicts, refreshes
			// or closes it; publish it so waiters and future creations
			// share it.
			cache.Complete(key, struct{}{}, bytes)
			then(0)
		})
	}
}

// buildClient constructs one client instance: CPU work on the container's
// one-core GIL group, scaled superlinearly by the in-container creation
// concurrency sampled at start (Fig. 4). The instance memory is charged
// when construction starts — every concurrently creating thread holds its
// partially built instance, which is what makes container memory grow
// with creation concurrency (Fig. 5). built receives the instance bytes.
func (r *Runner) buildClient(c *node.Container, spec *workload.ClientSpec, built func(bytes int64)) {
	k := c.BeginClientCreation()
	work := spec.CreationWork(k)
	bytes := spec.InstanceMem(c.ClientLive() + 1)
	c.AllocClientMem(bytes)
	c.GILGroup().Submit(work, func() {
		c.EndClientCreation()
		r.stats.ClientsBuilt++
		r.stats.ClientBytesAllocated += bytes
		built(bytes)
	})
}
