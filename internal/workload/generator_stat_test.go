package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// fibBucketIndex maps a sampled N back to its Fig. 9 bucket.
func fibBucketIndex(t *testing.T, n int) int {
	t.Helper()
	for i := 0; ; i++ {
		ns := FibNsForBucket(i)
		if ns == nil {
			break
		}
		for _, v := range ns {
			if v == n {
				return i
			}
		}
	}
	t.Fatalf("sampled fib N %d belongs to no bucket", n)
	return -1
}

// TestGeneratorBucketFrequencies draws a large sample and checks each
// Fig. 9 bucket's empirical frequency against its published weight. With
// 200k draws the binomial standard error per bucket is < 0.12%, so a
// 1-point absolute tolerance catches any broken cumulative table while
// staying deterministic (fixed seed).
func TestGeneratorBucketFrequencies(t *testing.T) {
	const draws = 200_000
	g := NewGenerator(12345)
	counts := make([]int, len(DurationBucketWeights))
	for i := 0; i < draws; i++ {
		counts[fibBucketIndex(t, g.SampleFibN())]++
	}
	var total float64
	for _, w := range DurationBucketWeights {
		total += w
	}
	for i, w := range DurationBucketWeights {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d frequency %.4f, want %.4f +/- 0.01 (%d draws)", i, got, want, counts[i])
		}
	}
}

// TestCreationWorkMonotone is the contention model's core property: more
// concurrent creations in one container can never make an individual
// construction cheaper (the paper's Fig. 4 curve is non-decreasing).
// testing/quick drives random specs and concurrency pairs.
func TestCreationWorkMonotone(t *testing.T) {
	// Domain bounds keep BaseCost * k^exp inside int64 nanoseconds:
	// 1s * 512^2.9 < 1e17 ns. Beyond that time.Duration overflows and
	// the model is meaningless anyway.
	prop := func(baseMillis uint16, expTenths uint8, k1, k2 uint16) bool {
		spec := ClientSpec{
			BaseCost:    time.Duration(baseMillis%1000+1) * time.Millisecond,
			GILExponent: float64(expTenths%30) / 10, // [0, 3)
		}
		lo, hi := int(k1%512)+1, int(k2%512)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		return spec.CreationWork(lo) <= spec.CreationWork(hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCreationWorkClampsK: sub-1 concurrency behaves as k = 1.
func TestCreationWorkClampsK(t *testing.T) {
	spec := DefaultClient()
	if spec.CreationWork(0) != spec.CreationWork(1) || spec.CreationWork(-3) != spec.CreationWork(1) {
		t.Error("k < 1 must clamp to the un-contended cost")
	}
}

// TestInstanceMemMonotone: with a first-instance footprint at least as
// large as each duplicate's (the paper's Fig. 5 shape — SDK import side
// effects land on the first client), per-instance memory is
// non-increasing in the instance ordinal, and cumulative memory is
// non-decreasing regardless.
func TestInstanceMemMonotone(t *testing.T) {
	perInstance := func(firstMB, marginalMB uint8, i1, i2 uint16) bool {
		first := int64(firstMB)<<20 | 1 // avoid both-zero degenerate spec
		marginal := int64(marginalMB) << 20
		if marginal > first {
			first, marginal = marginal, first
		}
		spec := ClientSpec{FirstMem: first, MarginalMem: marginal}
		lo, hi := int(i1%64)+1, int(i2%64)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		return spec.InstanceMem(lo) >= spec.InstanceMem(hi)
	}
	if err := quick.Check(perInstance, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}

	cumulative := func(firstMB, marginalMB uint8, nRaw uint16) bool {
		spec := ClientSpec{FirstMem: int64(firstMB) << 20, MarginalMem: int64(marginalMB) << 20}
		n := int(nRaw%64) + 2
		var prev, sum int64
		for i := 1; i <= n; i++ {
			sum += spec.InstanceMem(i)
			if sum < prev {
				return false
			}
			prev = sum
		}
		return true
	}
	if err := quick.Check(cumulative, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDefaultClientShape pins the paper's calibration to the properties
// the quick tests rely on.
func TestDefaultClientShape(t *testing.T) {
	c := DefaultClient()
	if c.FirstMem < c.MarginalMem {
		t.Errorf("Fig. 5 shape violated: first %d < marginal %d", c.FirstMem, c.MarginalMem)
	}
	if c.GILExponent < 1 {
		t.Errorf("GIL exponent %v < 1: contention would be sub-linear", c.GILExponent)
	}
}
