// Package workload defines the benchmark functions of the evaluation: the
// CPU-intensive Fibonacci family whose execution times reproduce the
// paper's Fig. 9 duration distribution, and the I/O function that creates
// cloud-storage clients (Listing 1), whose creation cost and memory
// footprint are calibrated to Figs. 4, 5 and 14(d).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Kind distinguishes the two workload families of the evaluation.
type Kind int

// Workload kinds.
const (
	// CPUIntensive is the fib(N) family (§IV, Fig. 9).
	CPUIntensive Kind = iota + 1
	// IO is the S3-client-creating function family (§II-B, Listing 1).
	IO
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPUIntensive:
		return "cpu"
	case IO:
		return "io"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ClientSpec describes the cloud-storage client a function creates, i.e.
// the redundant resource the Resource Multiplexer deduplicates.
//
// Creation cost model (calibrated to Fig. 4): client construction is CPU
// work executed under a runtime lock (the Python GIL in the paper's
// prototype), so concurrent creations inside one container serialise on
// one core. On top of serialisation, allocator and lock contention add a
// superlinear penalty: a construction starting while k creations are in
// flight costs BaseCost * k^GILExponent of CPU work, so a burst of nine
// simultaneous creations takes BaseCost * sum_{k=1..9} k^GILExponent
// ~= 66 ms * 48 ~= 3.2 s end to end, matching the paper's ~48x blow-up.
type ClientSpec struct {
	// Callee is the creation call being intercepted, e.g. "boto3.client".
	Callee string
	// ArgsKey stands in for the hashed creation arguments (access key,
	// bucket, region ...). Invocations with equal Callee+ArgsKey can share
	// one instance.
	ArgsKey string
	// BaseCost is the un-contended CPU cost of one construction.
	BaseCost time.Duration
	// GILExponent is the extra contention exponent beyond serialisation.
	GILExponent float64
	// FirstMem is the memory footprint of the first client instance in a
	// container (SDK import side effects included).
	FirstMem int64
	// MarginalMem is the footprint of each additional duplicate instance.
	MarginalMem int64
}

// CreationWork reports the CPU work of one construction when k creations
// run concurrently inside the same container (k >= 1).
func (c ClientSpec) CreationWork(k int) time.Duration {
	if k < 1 {
		k = 1
	}
	return time.Duration(float64(c.BaseCost) * math.Pow(float64(k), c.GILExponent))
}

// InstanceMem reports the memory cost of the i-th live instance in a
// container (i is 1-based).
func (c ClientSpec) InstanceMem(i int) int64 {
	if i <= 1 {
		return c.FirstMem
	}
	return c.MarginalMem
}

// Spec describes one serverless function.
type Spec struct {
	// Name is the function identity used for grouping (λA, λB, ...).
	Name string
	// Kind is the workload family.
	Kind Kind
	// Work is the CPU work of the function body (for IO functions, the
	// small compute after the storage access).
	Work time.Duration
	// IOWait is time spent blocked on storage/network (no CPU).
	IOWait time.Duration
	// Client is the storage client the function creates (nil for pure
	// CPU functions).
	Client *ClientSpec
}

// Default client-creation calibration (Figs. 4, 5, 14d).
const (
	// DefaultClientBaseCost is the un-contended S3 client construction
	// time (Fig. 4, concurrency 1).
	DefaultClientBaseCost = 66 * time.Millisecond
	// DefaultGILExponent calibrates Fig. 4: when a burst of 9 creations
	// enters one container, the i-th to start observes i in-flight
	// creations and costs BaseCost * i^alpha of serialised CPU work, so
	// the batch completes after BaseCost * sum(i^alpha) ~= 66 ms * 48
	// ~= 3.2 s, matching the paper's ~48x blow-up at concurrency 9.
	DefaultGILExponent = 1.05
	// DefaultClientFirstMem is the first client's footprint (Fig. 5,
	// concurrency 1: 9 MB).
	DefaultClientFirstMem = 9 << 20
	// DefaultClientMarginalMem is each duplicate's footprint (Fig. 5:
	// 9 MB -> 60 MB across 1 -> 9 concurrent clients).
	DefaultClientMarginalMem = 6_400 << 10
)

// DefaultClient returns the paper-calibrated S3 client spec.
func DefaultClient() ClientSpec {
	return ClientSpec{
		Callee:      "boto3.client",
		ArgsKey:     "s3:ACCESS_KEY:SECRET_KEY",
		BaseCost:    DefaultClientBaseCost,
		GILExponent: DefaultGILExponent,
		FirstMem:    DefaultClientFirstMem,
		MarginalMem: DefaultClientMarginalMem,
	}
}

// FibN bounds of the calibrated model.
const (
	MinFibN = 20
	MaxFibN = 35
)

// fibBase and fibGrowth define the fib(N) execution-time model
// d(N) = fibBase * fibGrowth^(N-MinFibN). Recursive Fibonacci cost grows
// by the golden ratio per increment of N; the base is picked so that
// N in [20, 26] stays under 45 ms as the paper reports.
const (
	fibBase   = 2500 * time.Microsecond
	fibGrowth = 1.61803398875
)

// FibDuration reports the modelled execution time of fib(n) on an idle
// core. It returns an error if n is outside [MinFibN, MaxFibN].
func FibDuration(n int) (time.Duration, error) {
	if n < MinFibN || n > MaxFibN {
		return 0, fmt.Errorf("workload: fib N must be in [%d, %d], got %d", MinFibN, MaxFibN, n)
	}
	return time.Duration(float64(fibBase) * math.Pow(fibGrowth, float64(n-MinFibN))), nil
}

// FibSpec builds the CPU-intensive function spec for fib(n).
// It returns an error if n is out of the calibrated range.
func FibSpec(n int) (Spec, error) {
	d, err := FibDuration(n)
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Name: fmt.Sprintf("fib%d", n),
		Kind: CPUIntensive,
		Work: d,
	}, nil
}

// IOSpec builds the I/O function spec of §IV: create an S3 client, touch
// blob storage, do a little compute. All invocations share the function
// name (one function type, as in the paper's I/O experiment) unless the
// caller renames it.
func IOSpec(name string) Spec {
	client := DefaultClient()
	return Spec{
		Name:   name,
		Kind:   IO,
		Work:   2 * time.Millisecond,
		IOWait: 15 * time.Millisecond,
		Client: &client,
	}
}

// DurationBucketBounds are the Fig. 9 histogram bucket lower bounds.
var DurationBucketBounds = []time.Duration{
	0,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	400 * time.Millisecond,
	1550 * time.Millisecond,
}

// DurationBucketWeights are the Fig. 9 per-bucket probabilities.
var DurationBucketWeights = []float64{0.5513, 0.0696, 0.0561, 0.1108, 0.1109, 0.1014}

// bucketFibNs lists which fib N values land in each Fig. 9 bucket under
// the FibDuration model.
var bucketFibNs = [][]int{
	{20, 21, 22, 23, 24, 25, 26}, // [0, 50 ms): all under 45 ms
	{27},                         // [50, 100 ms)
	{28, 29},                     // [100, 200 ms)
	{30},                         // [200, 400 ms)
	{31, 32, 33},                 // [400, 1550 ms)
	{34, 35},                     // [1550 ms, inf)
}

// FibNsForBucket reports the fib N values whose modelled duration falls in
// Fig. 9 bucket i, or nil for an out-of-range index.
func FibNsForBucket(i int) []int {
	if i < 0 || i >= len(bucketFibNs) {
		return nil
	}
	out := make([]int, len(bucketFibNs[i]))
	copy(out, bucketFibNs[i])
	return out
}

// Generator samples fib N values following the Fig. 9 duration
// distribution.
type Generator struct {
	rng *rand.Rand
	cum []float64
}

// NewGenerator creates a deterministic generator for the given seed.
func NewGenerator(seed int64) *Generator {
	cum := make([]float64, len(DurationBucketWeights))
	sum := 0.0
	for i, w := range DurationBucketWeights {
		sum += w
		cum[i] = sum
	}
	// Normalise: the published percentages sum to 1.0001 due to rounding.
	for i := range cum {
		cum[i] /= sum
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), cum: cum}
}

// SampleFibN draws a fib N value: a Fig. 9 bucket by weight, then a
// uniform N within the bucket.
func (g *Generator) SampleFibN() int {
	u := g.rng.Float64()
	bucket := len(g.cum) - 1
	for i, c := range g.cum {
		if u < c {
			bucket = i
			break
		}
	}
	ns := bucketFibNs[bucket]
	return ns[g.rng.Intn(len(ns))]
}

// Fib computes the n-th Fibonacci number with naive recursion. The live
// platform (internal/platform) uses it to burn real CPU exactly like the
// paper's benchmark function.
func Fib(n int) int {
	if n < 2 {
		return n
	}
	return Fib(n-1) + Fib(n-2)
}
