package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	if CPUIntensive.String() != "cpu" || IO.String() != "io" {
		t.Fatalf("Kind strings wrong: %v %v", CPUIntensive, IO)
	}
	if got := Kind(9).String(); got != "kind(9)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestFibDurationRange(t *testing.T) {
	if _, err := FibDuration(19); err == nil {
		t.Error("FibDuration(19) succeeded, want error")
	}
	if _, err := FibDuration(36); err == nil {
		t.Error("FibDuration(36) succeeded, want error")
	}
	d20, err := FibDuration(20)
	if err != nil {
		t.Fatalf("FibDuration(20): %v", err)
	}
	if d20 != 2500*time.Microsecond {
		t.Errorf("FibDuration(20) = %v, want 2.5ms", d20)
	}
}

func TestFibDurationPaperConstraints(t *testing.T) {
	// The paper: fib with N in [20, 26] completes in under 45 ms.
	for n := 20; n <= 26; n++ {
		d, err := FibDuration(n)
		if err != nil {
			t.Fatalf("FibDuration(%d): %v", n, err)
		}
		if d >= 45*time.Millisecond {
			t.Errorf("FibDuration(%d) = %v, want < 45ms", n, d)
		}
	}
}

func TestFibDurationMonotone(t *testing.T) {
	prev := time.Duration(0)
	for n := MinFibN; n <= MaxFibN; n++ {
		d, err := FibDuration(n)
		if err != nil {
			t.Fatalf("FibDuration(%d): %v", n, err)
		}
		if d <= prev {
			t.Fatalf("FibDuration(%d) = %v not > FibDuration(%d) = %v", n, d, n-1, prev)
		}
		prev = d
	}
}

func TestBucketFibNsMatchModel(t *testing.T) {
	// Every N assigned to a bucket must have a modelled duration inside
	// that bucket's bounds.
	for i := range DurationBucketBounds {
		lo := DurationBucketBounds[i]
		hi := time.Duration(math.MaxInt64)
		if i+1 < len(DurationBucketBounds) {
			hi = DurationBucketBounds[i+1]
		}
		for _, n := range FibNsForBucket(i) {
			d, err := FibDuration(n)
			if err != nil {
				t.Fatalf("FibDuration(%d): %v", n, err)
			}
			if d < lo || d >= hi {
				t.Errorf("fib(%d) = %v outside bucket %d [%v, %v)", n, d, i, lo, hi)
			}
		}
	}
}

func TestEveryFibNHasABucket(t *testing.T) {
	seen := map[int]bool{}
	for i := range DurationBucketBounds {
		for _, n := range FibNsForBucket(i) {
			if seen[n] {
				t.Errorf("fib N %d assigned to two buckets", n)
			}
			seen[n] = true
		}
	}
	for n := MinFibN; n <= MaxFibN; n++ {
		if !seen[n] {
			t.Errorf("fib N %d not in any bucket", n)
		}
	}
}

func TestFibNsForBucketOutOfRange(t *testing.T) {
	if FibNsForBucket(-1) != nil || FibNsForBucket(len(DurationBucketBounds)) != nil {
		t.Fatal("out-of-range bucket should return nil")
	}
}

func TestFibNsForBucketReturnsCopy(t *testing.T) {
	a := FibNsForBucket(0)
	a[0] = 999
	if FibNsForBucket(0)[0] == 999 {
		t.Fatal("FibNsForBucket exposes internal slice")
	}
}

func TestFibSpec(t *testing.T) {
	s, err := FibSpec(30)
	if err != nil {
		t.Fatalf("FibSpec(30): %v", err)
	}
	if s.Name != "fib30" || s.Kind != CPUIntensive || s.Client != nil {
		t.Fatalf("FibSpec(30) = %+v", s)
	}
	want, err := FibDuration(30)
	if err != nil {
		t.Fatalf("FibDuration(30): %v", err)
	}
	if s.Work != want {
		t.Fatalf("FibSpec(30).Work = %v, want %v", s.Work, want)
	}
	if _, err := FibSpec(5); err == nil {
		t.Fatal("FibSpec(5) succeeded, want error")
	}
}

func TestIOSpec(t *testing.T) {
	s := IOSpec("s3func")
	if s.Name != "s3func" || s.Kind != IO {
		t.Fatalf("IOSpec = %+v", s)
	}
	if s.Client == nil {
		t.Fatal("IOSpec has no client")
	}
	if s.Client.BaseCost != DefaultClientBaseCost {
		t.Fatalf("client base cost = %v", s.Client.BaseCost)
	}
}

func TestClientCreationWorkCalibration(t *testing.T) {
	c := DefaultClient()
	// k=1: exactly the base cost.
	if got := c.CreationWork(1); got != DefaultClientBaseCost {
		t.Fatalf("CreationWork(1) = %v, want %v", got, DefaultClientBaseCost)
	}
	// Negative/zero concurrency clamps to 1.
	if got := c.CreationWork(0); got != DefaultClientBaseCost {
		t.Fatalf("CreationWork(0) = %v, want %v", got, DefaultClientBaseCost)
	}
	// Fig. 4 calibration: a burst of 9 creations serialises on the GIL,
	// the i-th costing CreationWork(i); total elapsed must land near
	// 3165 ms (within ~15%).
	elapsed := 0.0
	for k := 1; k <= 9; k++ {
		elapsed += c.CreationWork(k).Seconds()
	}
	if elapsed < 2.7 || elapsed > 3.7 {
		t.Fatalf("modelled elapsed for a 9-burst = %.2fs, want ~3.165s", elapsed)
	}
}

func TestClientCreationWorkMonotone(t *testing.T) {
	c := DefaultClient()
	prev := time.Duration(0)
	for k := 1; k <= 10; k++ {
		w := c.CreationWork(k)
		if w <= prev {
			t.Fatalf("CreationWork(%d) = %v not increasing", k, w)
		}
		prev = w
	}
}

func TestClientInstanceMemCalibration(t *testing.T) {
	c := DefaultClient()
	if got := c.InstanceMem(1); got != DefaultClientFirstMem {
		t.Fatalf("InstanceMem(1) = %d, want %d", got, int64(DefaultClientFirstMem))
	}
	// Fig. 5: memory grows from 9 MB (k=1) to ~60 MB (k=9).
	total := int64(0)
	for i := 1; i <= 9; i++ {
		total += c.InstanceMem(i)
	}
	gotMB := float64(total) / (1 << 20)
	if gotMB < 55 || gotMB > 65 {
		t.Fatalf("9 concurrent clients use %.1f MB, want ~60 MB", gotMB)
	}
}

func TestGeneratorDistributionMatchesFig9(t *testing.T) {
	g := NewGenerator(42)
	const n = 200_000
	counts := make([]int, len(DurationBucketWeights))
	for i := 0; i < n; i++ {
		fibN := g.SampleFibN()
		d, err := FibDuration(fibN)
		if err != nil {
			t.Fatalf("sampled invalid N %d: %v", fibN, err)
		}
		for b := len(DurationBucketBounds) - 1; b >= 0; b-- {
			if d >= DurationBucketBounds[b] {
				counts[b]++
				break
			}
		}
	}
	for b, w := range DurationBucketWeights {
		got := float64(counts[b]) / n
		if math.Abs(got-w/1.0001) > 0.01 {
			t.Errorf("bucket %d frequency = %.4f, want ~%.4f", b, got, w)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 1000; i++ {
		if x, y := a.SampleFibN(), b.SampleFibN(); x != y {
			t.Fatalf("generators diverged at %d: %d vs %d", i, x, y)
		}
	}
}

// Property: every sampled N is in the calibrated range.
func TestPropertySampleInRange(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGenerator(seed)
		for i := 0; i < 100; i++ {
			n := g.SampleFibN()
			if n < MinFibN || n > MaxFibN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFib(t *testing.T) {
	want := []int{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := Fib(n); got != w {
			t.Errorf("Fib(%d) = %d, want %d", n, got, w)
		}
	}
}
