package dispatch

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"faasbatch/internal/sim"
)

func newController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{MinInterval: -1, MaxInterval: time.Second},
		{MinInterval: 0, MaxInterval: 0},
		{MinInterval: time.Second, MaxInterval: time.Millisecond},
		{MinInterval: 0, MaxInterval: time.Second, Alpha: 1.5},
		{MinInterval: 0, MaxInterval: time.Second, Alpha: -0.1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := New(Config{MaxInterval: time.Second}); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestFirstLoneArrivalFastPaths(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
	d := c.Arrive("f", 0, true)
	if d.Action != ActionFastPath {
		t.Fatalf("lone idle arrival: action = %v, want fast-path", d.Action)
	}
	if c.Pending("f") != 0 {
		t.Fatalf("pending = %d after fast path, want 0", c.Pending("f"))
	}
}

func TestBusyArrivalWaits(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
	d := c.Arrive("f", 0, false)
	if d.Action != ActionWait {
		t.Fatalf("non-idle arrival: action = %v, want wait", d.Action)
	}
	if d.Deadline != time.Duration(0)+d.Window {
		t.Fatalf("deadline = %v, want first arrival + window %v", d.Deadline, d.Window)
	}
}

func TestDenseArrivalsGrowTheWindow(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
	// 2 ms gaps: ~100 expected arrivals per cap — window ≈ cap.
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		c.Arrive("f", now, false)
		now += 2 * time.Millisecond
	}
	if w := c.Window("f"); w < 150*time.Millisecond {
		t.Fatalf("dense window = %v, want near the 200ms cap", w)
	}
	// A dense lone arrival must NOT fast-path: the next request is near.
	c.WindowClosed("f")
	if d := c.Arrive("f", now, true); d.Action != ActionWait {
		t.Fatalf("dense idle arrival: action = %v, want wait", d.Action)
	}
}

func TestSparseArrivalsShrinkTheWindow(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		d := c.Arrive("f", now, true)
		if d.Action != ActionFastPath {
			t.Fatalf("sparse idle arrival %d: action = %v, want fast-path", i, d.Action)
		}
		now += 2 * time.Second
	}
	if w := c.Window("f"); w > 25*time.Millisecond {
		t.Fatalf("sparse window = %v, want near the 1ms floor", w)
	}
}

func TestIdleGapResetsRateEstimate(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
	now := time.Duration(0)
	// Steady traffic primes the estimate.
	for i := 0; i < 10; i++ {
		c.Arrive("f", now, false)
		now += 50 * time.Millisecond
	}
	c.WindowClosed("f")
	// A long quiet spell (say the autoscaler retired the fleet), then a
	// burst. The first post-idle arrival is genuinely alone and must
	// still fast-path.
	now += 30 * time.Second
	if d := c.Arrive("f", now, true); d.Action != ActionFastPath {
		t.Fatalf("first post-idle arrival: action = %v, want fast-path", d.Action)
	}
	// The burst's second arrival must batch immediately: the idle gap
	// was discarded rather than folded in, so the 2ms burst gap IS the
	// estimate — not a 30s outlier that would keep every head-of-burst
	// arrival fast-pathing individually while it averaged down.
	now += 2 * time.Millisecond
	if d := c.Arrive("f", now, true); d.Action != ActionWait {
		t.Fatalf("second burst arrival: action = %v, want wait (batched)", d.Action)
	}
	if w := c.Window("f"); w < 150*time.Millisecond {
		t.Fatalf("post-burst window = %v, want near the 200ms cap", w)
	}
	// A gap below the reset threshold still feeds the estimate: the
	// window shrinks from the cap instead of snapping back to the floor.
	c.WindowClosed("f")
	now += time.Second
	c.Arrive("f", now, false)
	if w := c.Window("f"); w >= 150*time.Millisecond || w <= time.Millisecond {
		t.Fatalf("sub-threshold gap window = %v, want between floor and cap", w)
	}
}

func TestEarlyCloseAtMaxGroupSize(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond, MaxGroupSize: 4})
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if d := c.Arrive("f", now, false); d.Action != ActionWait {
			t.Fatalf("arrival %d: action = %v, want wait", i, d.Action)
		}
		now += time.Millisecond
	}
	if d := c.Arrive("f", now, false); d.Action != ActionEarlyClose {
		t.Fatalf("4th arrival: action = %v, want early-close", d.Action)
	}
	if c.Pending("f") != 0 {
		t.Fatalf("pending = %d after early close, want 0", c.Pending("f"))
	}
}

func TestWindowDeadlineAnchoredAtFirstArrival(t *testing.T) {
	c := newController(t, Config{MinInterval: 50 * time.Millisecond, MaxInterval: 50 * time.Millisecond})
	d1 := c.Arrive("f", 0, false)
	d2 := c.Arrive("f", 10*time.Millisecond, false)
	if d1.Deadline != d2.Deadline {
		t.Fatalf("joining arrival moved the deadline: %v -> %v", d1.Deadline, d2.Deadline)
	}
}

func TestEnsureOpenDoesNotSkewRate(t *testing.T) {
	c := newController(t, Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
	// Prime a sparse estimate.
	c.Arrive("f", 0, false)
	c.Arrive("f", 2*time.Second, false)
	c.WindowClosed("f")
	before := c.Window("f")
	d := c.EnsureOpen("f", 3*time.Second)
	if d.Action != ActionWait {
		t.Fatalf("EnsureOpen action = %v, want wait", d.Action)
	}
	// A burst of retries must leave the arrival-rate estimate alone.
	for i := 0; i < 10; i++ {
		c.EnsureOpen("f", 3*time.Second)
	}
	c.WindowClosed("f")
	c.Arrive("f", 5*time.Second, false)
	if after := c.Window("f"); after > before*2 {
		t.Fatalf("retries skewed the window: %v -> %v", before, after)
	}
}

// TestPropertyWindowWithinBounds: whatever the arrival sequence, the
// chosen interval stays inside [MinInterval, MaxInterval].
func TestPropertyWindowWithinBounds(t *testing.T) {
	prop := func(seed int64, gapsMicros []uint32) bool {
		cfg := Config{MinInterval: 2 * time.Millisecond, MaxInterval: 200 * time.Millisecond, MaxGroupSize: 8}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		now := time.Duration(0)
		deadline := time.Duration(-1)
		for _, g := range gapsMicros {
			now += time.Duration(g%2_000_000) * time.Microsecond
			// Close a due window the way a caller's timer would.
			if deadline >= 0 && now >= deadline {
				c.WindowClosed("f")
				deadline = -1
			}
			d := c.Arrive("f", now, rng.Intn(2) == 0)
			if d.Window < cfg.MinInterval || d.Window > cfg.MaxInterval {
				return false
			}
			switch d.Action {
			case ActionWait:
				if d.Deadline < now || d.Deadline > now+cfg.MaxInterval {
					return false
				}
				deadline = d.Deadline
			default:
				deadline = -1
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWindowMonotoneInRate: a faster constant arrival process
// never yields a smaller steady-state window than a slower one.
func TestPropertyWindowMonotoneInRate(t *testing.T) {
	steady := func(gap time.Duration) time.Duration {
		c, err := New(Config{MinInterval: time.Millisecond, MaxInterval: 200 * time.Millisecond})
		if err != nil {
			panic(err)
		}
		now := time.Duration(0)
		for i := 0; i < 64; i++ {
			c.Arrive("f", now, false)
			c.WindowClosed("f")
			now += gap
		}
		return c.Window("f")
	}
	prop := func(a, b uint32) bool {
		gapA := time.Duration(1+a%5_000_000) * time.Microsecond
		gapB := time.Duration(1+b%5_000_000) * time.Microsecond
		if gapA > gapB {
			gapA, gapB = gapB, gapA
		}
		// gapA <= gapB: the faster process (gapA) must choose a window at
		// least as large as the slower one.
		return steady(gapA) >= steady(gapB)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEarlyCloseBoundsGroups: simulating the caller's queue, no
// dispatched group ever exceeds MaxGroupSize.
func TestPropertyEarlyCloseBoundsGroups(t *testing.T) {
	prop := func(seed int64, n uint8, maxGroup uint8) bool {
		cap := int(maxGroup%16) + 1
		c, err := New(Config{MinInterval: time.Millisecond, MaxInterval: 100 * time.Millisecond, MaxGroupSize: cap})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		now := time.Duration(0)
		queue := 0
		deadline := time.Duration(-1)
		for i := 0; i < int(n); i++ {
			now += time.Duration(rng.Intn(40)) * time.Millisecond
			// Close a due window the way a caller would.
			if deadline >= 0 && now >= deadline {
				c.WindowClosed("f")
				queue = 0
				deadline = -1
			}
			queue++
			d := c.Arrive("f", now, queue == 1 && rng.Intn(2) == 0)
			switch d.Action {
			case ActionFastPath, ActionEarlyClose:
				if queue > cap {
					return false
				}
				queue = 0
				deadline = -1
			case ActionWait:
				if queue >= cap {
					// The controller must have early-closed at the cap.
					return false
				}
				deadline = d.Deadline
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSimVsManualConformance drives the same arrival schedule through the
// controller twice — once from discrete-event simulator callbacks on the
// virtual clock, once from a plain loop doing duration arithmetic the way
// the live platform's wall-clock dispatcher does — and requires identical
// decision sequences. This is the clock-agnostic guarantee: sim and live
// share one state machine, not two reimplementations.
func TestSimVsManualConformance(t *testing.T) {
	cfg := Config{MinInterval: 2 * time.Millisecond, MaxInterval: 150 * time.Millisecond, MaxGroupSize: 6}
	rng := rand.New(rand.NewSource(42))
	type arrival struct {
		fn   string
		at   time.Duration
		idle bool
	}
	var schedule []arrival
	now := time.Duration(0)
	fns := []string{"a", "b"}
	for i := 0; i < 200; i++ {
		now += time.Duration(rng.Intn(30)) * time.Millisecond
		schedule = append(schedule, arrival{fn: fns[rng.Intn(len(fns))], at: now, idle: rng.Intn(3) == 0})
	}

	record := func(d Decision) string {
		return d.Action.String() + "/" + d.Deadline.String() + "/" + d.Window.String()
	}

	// Manual (live-style) drive.
	manual := newController(t, cfg)
	var manualLog []string
	for _, a := range schedule {
		manualLog = append(manualLog, record(manual.Arrive(a.fn, a.at, a.idle)))
	}

	// Sim drive: schedule each arrival as an engine event.
	eng := sim.New(1)
	simCtrl := newController(t, cfg)
	var simLog []string
	for _, a := range schedule {
		a := a
		eng.ScheduleAt(sim.Time(a.at), func() {
			d := simCtrl.Arrive(a.fn, eng.Now().Duration(), a.idle)
			simLog = append(simLog, record(d))
		})
	}
	eng.Run()

	if len(manualLog) != len(simLog) {
		t.Fatalf("decision counts differ: manual %d, sim %d", len(manualLog), len(simLog))
	}
	for i := range manualLog {
		if manualLog[i] != simLog[i] {
			t.Fatalf("decision %d diverges: manual %q, sim %q", i, manualLog[i], simLog[i])
		}
	}
}

func TestActionString(t *testing.T) {
	if ActionWait.String() != "wait" || ActionFastPath.String() != "fast-path" || ActionEarlyClose.String() != "early-close" {
		t.Fatal("action strings wrong")
	}
	if Action(9).String() != "action(9)" {
		t.Fatal("unknown action string wrong")
	}
}
