// Package dispatch implements the adaptive Invoke Mapper window
// controller shared by the simulator (internal/core) and the live
// platform (internal/platform).
//
// The paper fixes the dispatch interval at 0.2 s; its own interval sweep
// (Fig. 11) shows the choice is workload-sensitive. The controller keeps
// the paper's grouping semantics — all requests for one function inside
// one window form a single batch — but sizes the window per function from
// the observed arrival process:
//
//   - Idle fast-path: a lone arrival with no batching opportunity (no
//     busy container of that function, nothing pending, arrivals sparse)
//     dispatches immediately instead of eating up to a full window of
//     pointless queueing.
//   - Load-aware window: an EWMA over inter-arrival gaps predicts how
//     many further arrivals a window could fold. Sparse traffic shrinks
//     the window toward MinInterval; dense traffic grows it toward
//     MaxInterval, where grouping pays exactly as in the paper.
//   - Early close: a window whose group already reached MaxGroupSize
//     closes at once — further waiting cannot improve the batch.
//
// The controller is clock-agnostic: callers feed monotonic offsets
// (time.Duration since an arbitrary epoch). The discrete-event simulator
// passes virtual time and the live platform passes wall-clock offsets,
// so both drive the identical state machine — the sim-vs-live conformance
// test in dispatch_test.go depends on that.
//
// Controller is not safe for concurrent use; callers serialise access
// (the sim engine is single-threaded, the live platform holds its mutex).
package dispatch

import (
	"fmt"
	"time"

	"faasbatch/internal/policy"
)

// DefaultAlpha is the EWMA smoothing factor for inter-arrival gaps:
// heavy enough that a burst's tight gaps dominate within a few arrivals,
// light enough that one stray gap does not whipsaw the window.
const DefaultAlpha = 0.3

// idleResetFactor scales MaxInterval into the idle-reset threshold: a
// gap longer than idleResetFactor windows is a restarted arrival stream
// (the function went quiet — possibly scaled to zero), not a sample of
// the old process. The gap is discarded and the EWMA re-primed from the
// new stream, so a burst arriving after the quiet spell sees its own
// tight gaps immediately and re-batches within two arrivals — the
// cold-start amortisation the autoscaler's scale-from-zero wake relies
// on — instead of fast-pathing each head-of-burst arrival individually
// while the stale idle gap averages down.
const idleResetFactor = 8

// Config parameterises a Controller.
type Config struct {
	// MinInterval is the floor of the adaptive window: the shortest a
	// per-function window may shrink when arrivals are sparse. It must
	// be non-negative (zero means a window may close immediately).
	MinInterval time.Duration
	// MaxInterval is the cap of the adaptive window — typically the
	// paper's fixed interval, so adaptive mode never batches more
	// coarsely than the fixed configuration it replaces.
	MaxInterval time.Duration
	// MaxGroupSize early-closes a window whose group reached this many
	// invocations (<= 0 means no cap).
	MaxGroupSize int
	// Alpha is the EWMA smoothing factor in (0, 1]; zero selects
	// DefaultAlpha.
	Alpha float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MinInterval < 0 {
		return fmt.Errorf("dispatch: min interval must be non-negative, got %v", c.MinInterval)
	}
	if c.MaxInterval <= 0 {
		return fmt.Errorf("dispatch: max interval must be positive, got %v", c.MaxInterval)
	}
	if c.MaxInterval < c.MinInterval {
		return fmt.Errorf("dispatch: max interval %v below min interval %v", c.MaxInterval, c.MinInterval)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("dispatch: alpha must be in (0, 1] or zero for the default, got %v", c.Alpha)
	}
	return nil
}

// Action says what the caller must do with the arrival it just reported.
type Action int

// Actions.
const (
	// ActionWait holds the arrival for its window; the window closes at
	// Decision.Deadline (the caller dispatches the whole group then).
	ActionWait Action = iota
	// ActionFastPath dispatches the arrival immediately: it is alone,
	// nothing of its function is busy, and the arrival process is too
	// sparse for a window to fold a second request.
	ActionFastPath
	// ActionEarlyClose dispatches the whole pending group immediately:
	// it reached MaxGroupSize, so holding the window open buys nothing.
	ActionEarlyClose
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionWait:
		return "wait"
	case ActionFastPath:
		return "fast-path"
	case ActionEarlyClose:
		return "early-close"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Decision is the controller's verdict on one arrival.
type Decision struct {
	// Action is what to do with the pending group now.
	Action Action
	// Deadline is the absolute offset at which the open window closes
	// (meaningful for ActionWait). Arrivals joining an already-open
	// window see its original deadline: the window is anchored at the
	// group's first arrival, as in the paper.
	Deadline time.Duration
	// Window is the interval the controller chose for this function at
	// this arrival — the gauge the metrics surface exports.
	Window time.Duration
}

// fnState is one function's adaptive window state.
type fnState struct {
	// gap smooths inter-arrival gaps (in seconds).
	gap *policy.EWMA
	// last is the previous arrival offset; seen marks it valid.
	last time.Duration
	seen bool
	// pending counts arrivals since the last window close.
	pending int
	// open marks an open window ending at deadline, anchored at the
	// group's first arrival (groupStart).
	open       bool
	groupStart time.Duration
	deadline   time.Duration
	// window is the most recently chosen interval.
	window time.Duration
}

// Controller maps arrivals to dispatch decisions, one window state
// machine per function.
type Controller struct {
	cfg Config
	fns map[string]*fnState
}

// New builds a Controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	return &Controller{cfg: cfg, fns: make(map[string]*fnState)}, nil
}

// state returns fn's window state, creating it on first use.
func (c *Controller) state(fn string) *fnState {
	st, ok := c.fns[fn]
	if !ok {
		ewma, err := policy.NewEWMA(c.cfg.Alpha)
		if err != nil {
			// Unreachable: New validated alpha.
			panic(err)
		}
		st = &fnState{gap: ewma}
		c.fns[fn] = st
	}
	return st
}

// window chooses fn's interval from the smoothed arrival rate. With an
// expected n = MaxInterval/gap further arrivals inside the cap, the
// window interpolates Min + (Max-Min)·n/(n+1): sparse traffic (n → 0)
// collapses to MinInterval, dense traffic (n → ∞) saturates at
// MaxInterval. The mapping is monotone in the arrival rate — the
// property test in dispatch_test.go proves it.
func (c *Controller) window(st *fnState) time.Duration {
	min, max := c.cfg.MinInterval, c.cfg.MaxInterval
	if !st.gap.Primed() {
		// No rate estimate yet: assume sparse, favour latency.
		return min
	}
	gap := st.gap.Value()
	if gap <= 0 {
		// Arrivals in the same instant: maximal density.
		return max
	}
	n := max.Seconds() / gap
	w := min + time.Duration(n/(n+1)*float64(max-min))
	if w < min {
		w = min
	}
	if w > max {
		w = max
	}
	return w
}

// sparse reports whether fewer than one further arrival is expected even
// within the full MaxInterval — the regime where holding a window open is
// pure queueing delay.
func (c *Controller) sparse(st *fnState) bool {
	if !st.gap.Primed() {
		return true
	}
	return st.gap.Value() > c.cfg.MaxInterval.Seconds()
}

// Arrive reports one arrival for fn at monotonic offset now. idle is the
// caller's batching-opportunity signal: true when no container of fn is
// busy and nothing else of fn waits (the arrival is alone). The returned
// Decision tells the caller to dispatch now (fast path / early close —
// the controller has already reset the group) or to hold until Deadline.
func (c *Controller) Arrive(fn string, now time.Duration, idle bool) Decision {
	st := c.state(fn)
	if st.seen {
		if gap := now - st.last; gap > time.Duration(idleResetFactor)*c.cfg.MaxInterval {
			// Idle fast-path reset: the stream restarted after a long
			// quiet spell (see idleResetFactor).
			st.gap.Reset()
		} else {
			st.gap.Observe(gap.Seconds())
		}
	}
	st.last = now
	st.seen = true
	st.pending++
	st.window = c.window(st)

	if c.cfg.MaxGroupSize > 0 && st.pending >= c.cfg.MaxGroupSize {
		st.reset()
		return Decision{Action: ActionEarlyClose, Window: st.window}
	}
	if idle && st.pending == 1 && !st.open && c.sparse(st) {
		st.reset()
		return Decision{Action: ActionFastPath, Window: st.window}
	}
	if !st.open {
		st.open = true
		st.groupStart = now
		st.deadline = now + st.window
	} else if d := st.groupStart + st.window; d > st.deadline {
		// The arrival estimate densified since the window opened (e.g. a
		// burst arriving after a quiet spell re-primes the EWMA): extend
		// the deadline so the burst is not fragmented by the stale, short
		// window chosen at its head. Still anchored at the group's first
		// arrival, so no group ever waits longer than MaxInterval.
		st.deadline = d
	}
	return Decision{Action: ActionWait, Deadline: st.deadline, Window: st.window}
}

// EnsureOpen opens a window for fn (if none is open) without recording an
// arrival — used when a retry re-batches an old invocation into the next
// window: the retried call must not skew the arrival-rate estimate, but
// it does need a window deadline to ride. The returned Decision is always
// ActionWait.
func (c *Controller) EnsureOpen(fn string, now time.Duration) Decision {
	st := c.state(fn)
	st.pending++
	if c.cfg.MaxGroupSize > 0 && st.pending >= c.cfg.MaxGroupSize {
		st.reset()
		return Decision{Action: ActionEarlyClose, Window: st.window}
	}
	if !st.open {
		st.window = c.window(st)
		st.open = true
		st.groupStart = now
		st.deadline = now + st.window
	}
	return Decision{Action: ActionWait, Deadline: st.deadline, Window: st.window}
}

// WindowClosed informs the controller that fn's pending group dispatched
// (deadline reached, or the caller flushed — e.g. at Close). Callers must
// pair every drain of their pending queue with exactly one WindowClosed,
// so the controller's group count stays in step with the queue.
func (c *Controller) WindowClosed(fn string) {
	if st, ok := c.fns[fn]; ok {
		st.reset()
	}
}

// reset clears the group state after a dispatch.
func (st *fnState) reset() {
	st.pending = 0
	st.open = false
	st.groupStart = 0
	st.deadline = 0
}

// Window reports fn's most recently chosen interval (MinInterval before
// any arrival): the value behind the dispatch-window gauge.
func (c *Controller) Window(fn string) time.Duration {
	if st, ok := c.fns[fn]; ok && st.window > 0 {
		return st.window
	}
	return c.cfg.MinInterval
}

// Pending reports how many arrivals fn's open window currently holds.
func (c *Controller) Pending(fn string) int {
	if st, ok := c.fns[fn]; ok {
		return st.pending
	}
	return 0
}

// expectedGroupCap bounds ExpectedGroup so one anomalous gap estimate
// cannot demand an absurd pre-allocation.
const expectedGroupCap = 64

// ExpectedGroup estimates how many invocations fn's next window will
// fold, from the same EWMA that sizes the window: a window of length w
// over arrivals gapped g seconds apart holds about w/g + 1 calls (the
// opener plus the arrivals the window folds). Callers use it to pre-size
// group slices so the steady state appends without growing. The estimate
// is clamped to [1, 64] and to MaxGroupSize; an unprimed function
// returns 1.
func (c *Controller) ExpectedGroup(fn string) int {
	st, ok := c.fns[fn]
	if !ok || !st.gap.Primed() {
		return 1
	}
	w := st.window
	if w <= 0 {
		w = c.window(st)
	}
	n := 1
	if gap := st.gap.Value(); gap > 0 {
		n = int(w.Seconds()/gap) + 1
	} else {
		// Same-instant arrivals: maximal density, take the cap.
		n = expectedGroupCap
	}
	if c.cfg.MaxGroupSize > 0 && n > c.cfg.MaxGroupSize {
		n = c.cfg.MaxGroupSize
	}
	if n > expectedGroupCap {
		n = expectedGroupCap
	}
	if n < 1 {
		n = 1
	}
	return n
}
