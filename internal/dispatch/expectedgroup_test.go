package dispatch

import (
	"testing"
	"time"
)

func TestExpectedGroupUnprimed(t *testing.T) {
	c, err := New(Config{MinInterval: 10 * time.Millisecond, MaxInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ExpectedGroup("never-seen"); got != 1 {
		t.Fatalf("unknown fn: got %d, want 1", got)
	}
	c.Arrive("once", 0, true)
	if got := c.ExpectedGroup("once"); got != 1 {
		t.Fatalf("single arrival (unprimed EWMA): got %d, want 1", got)
	}
}

func TestExpectedGroupDenseTraffic(t *testing.T) {
	c, err := New(Config{MinInterval: 10 * time.Millisecond, MaxInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 1 ms gaps: a ~200 ms window should expect a large group.
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		c.Arrive("dense", now, false)
		now += time.Millisecond
	}
	got := c.ExpectedGroup("dense")
	if got < 10 {
		t.Fatalf("dense traffic: got %d, want >= 10", got)
	}
	if got > expectedGroupCap {
		t.Fatalf("dense traffic: got %d, exceeds cap %d", got, expectedGroupCap)
	}
}

func TestExpectedGroupSparseTraffic(t *testing.T) {
	c, err := New(Config{MinInterval: 10 * time.Millisecond, MaxInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 1 s gaps: no window folds a second arrival.
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		c.Arrive("sparse", now, true)
		now += time.Second
	}
	if got := c.ExpectedGroup("sparse"); got != 1 {
		t.Fatalf("sparse traffic: got %d, want 1", got)
	}
}

func TestExpectedGroupRespectsMaxGroupSize(t *testing.T) {
	c, err := New(Config{MinInterval: 10 * time.Millisecond, MaxInterval: 200 * time.Millisecond, MaxGroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		c.Arrive("capped", now, false)
		now += 100 * time.Microsecond
	}
	if got := c.ExpectedGroup("capped"); got != 4 {
		t.Fatalf("MaxGroupSize=4: got %d, want 4", got)
	}
}

func TestExpectedGroupSameInstantArrivals(t *testing.T) {
	c, err := New(Config{MinInterval: 10 * time.Millisecond, MaxInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Arrive("burst", 0, false)
	}
	if got := c.ExpectedGroup("burst"); got != expectedGroupCap {
		t.Fatalf("zero-gap arrivals: got %d, want cap %d", got, expectedGroupCap)
	}
}
