package chaos

import (
	"sync"
	"testing"
)

func TestSetRatesSwapsTable(t *testing.T) {
	inj := MustNew(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if inj.Should(HandlerError) {
			t.Fatal("zero-rate injector fired")
		}
	}
	if err := inj.SetRates(map[Kind]float64{HandlerError: 0.9}); err != nil {
		t.Fatalf("SetRates: %v", err)
	}
	fired := 0
	for i := 0; i < 100; i++ {
		if inj.Should(HandlerError) {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("0.9-rate injector never fired in 100 draws")
	}
	if err := inj.SetRates(nil); err != nil {
		t.Fatalf("SetRates(nil): %v", err)
	}
	for i := 0; i < 100; i++ {
		if inj.Should(HandlerError) {
			t.Fatal("injector fired after rates were zeroed")
		}
	}
	if got := inj.Counts()[HandlerError]; got != uint64(fired) {
		t.Errorf("Counts = %d, want %d", got, fired)
	}
}

func TestSetRatesValidation(t *testing.T) {
	inj := MustNew(Config{Seed: 1, Rates: map[Kind]float64{BootFailure: 0.5}})
	if err := inj.SetRates(map[Kind]float64{BootFailure: 1.5}); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if err := inj.SetRates(map[Kind]float64{Kind(99): 0.1}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// A failed swap must leave the previous table intact.
	if got := inj.Rates()[BootFailure]; got != 0.5 {
		t.Fatalf("rate after failed swap = %v, want 0.5", got)
	}
	var nilInj *Injector
	if err := nilInj.SetRates(nil); err == nil {
		t.Fatal("SetRates on nil injector accepted")
	}
}

// TestSetRatesDeterministicSchedule verifies that the same swap timeline
// yields the same fault schedule: streams are not reset by swaps, and
// zero-rate decisions draw nothing.
func TestSetRatesDeterministicSchedule(t *testing.T) {
	runSchedule := func() []bool {
		inj := MustNew(Config{Seed: 42, Rates: map[Kind]float64{ContainerCrash: 0.3}})
		out := make([]bool, 0, 300)
		for i := 0; i < 100; i++ {
			out = append(out, inj.Should(ContainerCrash))
		}
		if err := inj.SetRates(nil); err != nil {
			t.Fatalf("SetRates: %v", err)
		}
		for i := 0; i < 100; i++ {
			out = append(out, inj.Should(ContainerCrash))
		}
		if err := inj.SetRates(map[Kind]float64{ContainerCrash: 0.3}); err != nil {
			t.Fatalf("SetRates: %v", err)
		}
		for i := 0; i < 100; i++ {
			out = append(out, inj.Should(ContainerCrash))
		}
		return out
	}
	a, b := runSchedule(), runSchedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical schedules", i)
		}
	}
	for _, v := range a[100:200] {
		if v {
			t.Fatal("fault fired while rates were zero")
		}
	}
}

// TestSetRatesConcurrentWithShould drives swaps against decisions from
// many goroutines; run under -race this is the data-race regression for
// scenario-driven mid-run chaos reconfiguration.
func TestSetRatesConcurrentWithShould(t *testing.T) {
	inj := MustNew(Config{Seed: 7, Rates: Uniform(0.2)})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range Kinds() {
					inj.Should(k)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		rates := Uniform(float64(i%10) / 20)
		if err := inj.SetRates(rates); err != nil {
			t.Errorf("SetRates: %v", err)
		}
		inj.Rates()
	}
	close(stop)
	wg.Wait()
}
