package chaos

import (
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	for _, k := range Kinds() {
		if inj.Should(k) {
			t.Fatalf("nil injector fired %v", k)
		}
	}
	if got := inj.ColdStartFactor(); got != 1 {
		t.Fatalf("nil ColdStartFactor = %v, want 1", got)
	}
	if got := inj.HangDuration(); got != 0 {
		t.Fatalf("nil HangDuration = %v, want 0", got)
	}
	if n := inj.Total(); n != 0 {
		t.Fatalf("nil Total = %d, want 0", n)
	}
	if s := inj.Summary(); s != "none" {
		t.Fatalf("nil Summary = %q, want none", s)
	}
}

func TestRateValidation(t *testing.T) {
	if _, err := New(Config{Rates: map[Kind]float64{BootFailure: 1.0}}); err == nil {
		t.Fatal("rate 1.0 accepted")
	}
	if _, err := New(Config{Rates: map[Kind]float64{BootFailure: -0.1}}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(Config{Rates: map[Kind]float64{Kind(99): 0.1}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	mk := func() *Injector {
		return MustNew(Config{Seed: 42, Rates: Uniform(0.3)})
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		for _, k := range Kinds() {
			if a.Should(k) != b.Should(k) {
				t.Fatalf("schedules diverged at draw %d kind %v", i, k)
			}
		}
	}
	if a.Total() == 0 {
		t.Fatal("no faults fired at 30% over 1000 draws")
	}
}

func TestPerKindStreamsAreIndependent(t *testing.T) {
	// The schedule of one kind must not depend on draws of other kinds:
	// interleaving BootFailure draws must leave ContainerCrash's sequence
	// untouched.
	solo := MustNew(Config{Seed: 7, Rates: Uniform(0.2)})
	interleaved := MustNew(Config{Seed: 7, Rates: Uniform(0.2)})
	var want, got []bool
	for i := 0; i < 500; i++ {
		want = append(want, solo.Should(ContainerCrash))
	}
	for i := 0; i < 500; i++ {
		interleaved.Should(BootFailure)
		interleaved.Should(HandlerPanic)
		got = append(got, interleaved.Should(ContainerCrash))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("ContainerCrash schedule perturbed by other kinds at draw %d", i)
		}
	}
}

func TestRateConverges(t *testing.T) {
	inj := MustNew(Config{Seed: 1, Rates: map[Kind]float64{HandlerError: 0.1}})
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if inj.Should(HandlerError) {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("empirical rate %.4f far from 0.1", rate)
	}
	if inj.Should(HandlerPanic) {
		t.Fatal("kind with no configured rate fired")
	}
}

func TestConcurrentUse(t *testing.T) {
	inj := MustNew(Config{Seed: 3, Rates: Uniform(0.5)})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, k := range Kinds() {
					inj.Should(k)
				}
			}
		}()
	}
	wg.Wait()
	if inj.Total() == 0 {
		t.Fatal("no faults recorded under concurrency")
	}
}

func TestDefaults(t *testing.T) {
	inj := MustNew(Config{Seed: 1})
	if inj.ColdStartFactor() != 5 {
		t.Fatalf("default ColdStartFactor = %v, want 5", inj.ColdStartFactor())
	}
	if inj.HangDuration() != 2*time.Second {
		t.Fatalf("default HangDuration = %v, want 2s", inj.HangDuration())
	}
}
