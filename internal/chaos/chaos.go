// Package chaos provides deterministic, seeded fault injection for both
// the live platform (internal/platform) and the discrete-event simulation
// (internal/node, internal/fnruntime, internal/core).
//
// Each fault kind draws from its own random stream derived from the
// injector seed, so the schedule of one kind depends only on how many
// decisions of that kind were made — not on interleaving with other
// kinds. In the single-threaded simulation this makes a run's fault
// schedule a pure function of (seed, rates): same seed, same faults. In
// the live platform the injector is safe for concurrent use; per-kind
// streams remain seeded, though goroutine interleaving decides which
// invocation observes which draw.
//
// A nil *Injector is valid and injects nothing, so fault injection is
// strictly opt-in and free when disabled: no lock is taken and no random
// number is drawn.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Kind enumerates the injectable fault kinds.
type Kind int

// Fault kinds.
const (
	// BootFailure fails a container boot after its init phase; the
	// creation is retried and the extra wait lands in cold-start latency.
	BootFailure Kind = iota
	// ContainerCrash kills a container that is about to expand (or is
	// expanding) a batch, taking every unfinished invocation in it down.
	ContainerCrash
	// HandlerError makes a handler invocation return an error.
	HandlerError
	// HandlerPanic makes a handler invocation panic.
	HandlerPanic
	// HandlerHang blocks a handler past any configured deadline.
	HandlerHang
	// SlowColdStart inflates one container boot by ColdStartFactor.
	SlowColdStart
	// StorageFailure fails a storage-client construction inside the
	// Resource Multiplexer.
	StorageFailure
	// WorkerFailure fails one routed forward attempt with a synthetic
	// connection error, as if the target worker died mid-request
	// (internal/router's forwarding proxy consults it before each hop).
	WorkerFailure

	numKinds // sentinel: keep last
)

// Kinds lists every fault kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BootFailure:
		return "boot-failure"
	case ContainerCrash:
		return "container-crash"
	case HandlerError:
		return "handler-error"
	case HandlerPanic:
		return "handler-panic"
	case HandlerHang:
		return "handler-hang"
	case SlowColdStart:
		return "slow-cold-start"
	case StorageFailure:
		return "storage-failure"
	case WorkerFailure:
		return "worker-failure"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parameterises an Injector.
type Config struct {
	// Seed derives every per-kind random stream.
	Seed int64
	// Rates maps each fault kind to its injection probability in [0, 1).
	// Absent kinds inject nothing.
	Rates map[Kind]float64
	// ColdStartFactor multiplies the boot latency of a SlowColdStart
	// victim. Zero defaults to 5.
	ColdStartFactor float64
	// HangDuration is how long an injected HandlerHang blocks. Hangs are
	// bounded so chaos runs settle; the point is to overrun deadlines,
	// not to leak goroutines forever. Zero defaults to 2 s.
	HangDuration time.Duration
}

// Uniform returns a rate table with every fault kind at rate.
func Uniform(rate float64) map[Kind]float64 {
	out := make(map[Kind]float64, numKinds)
	for _, k := range Kinds() {
		out[k] = rate
	}
	return out
}

// Injector is a seeded fault source. The zero value is not usable; create
// injectors with New. A nil *Injector injects nothing.
type Injector struct {
	mu              sync.Mutex
	rates           [numKinds]float64
	streams         [numKinds]*rand.Rand
	draws           [numKinds]uint64
	injected        [numKinds]uint64
	coldStartFactor float64
	hang            time.Duration
}

// New builds an injector from cfg. Rates outside [0, 1) are an error.
func New(cfg Config) (*Injector, error) {
	inj := &Injector{
		coldStartFactor: cfg.ColdStartFactor,
		hang:            cfg.HangDuration,
	}
	if inj.coldStartFactor <= 0 {
		inj.coldStartFactor = 5
	}
	if inj.hang <= 0 {
		inj.hang = 2 * time.Second
	}
	for k, rate := range cfg.Rates {
		if k < 0 || k >= numKinds {
			return nil, fmt.Errorf("chaos: unknown fault kind %d", int(k))
		}
		if rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("chaos: rate for %v must be in [0, 1), got %v", k, rate)
		}
		inj.rates[k] = rate
	}
	for i := range inj.streams {
		// Distinct per-kind streams: mix the kind into the seed so kinds
		// do not share a sequence.
		inj.streams[i] = rand.New(rand.NewSource(cfg.Seed*int64(numKinds) + int64(i) + 1))
	}
	return inj, nil
}

// MustNew is New for static configurations known to be valid (tests,
// examples); it panics on error.
func MustNew(cfg Config) *Injector {
	inj, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return inj
}

// SetRates atomically replaces the injector's rate table, validating like
// New: absent kinds drop to zero, rates outside [0, 1) are an error and
// leave the injector unchanged. The per-kind random streams and draw
// counters are NOT reset: decisions made while a kind's rate is zero
// stay free (no value drawn, as in Should), and decisions at non-zero
// rates keep consuming that kind's stream in order, so in the
// single-threaded simulation a run's fault schedule remains a pure
// function of (seed, rates timeline). Scenario phases use this to turn
// fault storms on and off mid-run. Safe for concurrent use with Should;
// an error is returned on a nil injector.
func (inj *Injector) SetRates(rates map[Kind]float64) error {
	if inj == nil {
		return fmt.Errorf("chaos: SetRates on nil injector")
	}
	var next [numKinds]float64
	for k, rate := range rates {
		if k < 0 || k >= numKinds {
			return fmt.Errorf("chaos: unknown fault kind %d", int(k))
		}
		if rate < 0 || rate >= 1 {
			return fmt.Errorf("chaos: rate for %v must be in [0, 1), got %v", k, rate)
		}
		next[k] = rate
	}
	inj.mu.Lock()
	inj.rates = next
	inj.mu.Unlock()
	return nil
}

// Rates snapshots the current per-kind injection rates, omitting zero
// entries. It is safe on a nil injector (empty map).
func (inj *Injector) Rates() map[Kind]float64 {
	out := map[Kind]float64{}
	if inj == nil {
		return out
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for k, r := range inj.rates {
		if r > 0 {
			out[Kind(k)] = r
		}
	}
	return out
}

// KindByName resolves a fault kind from its String form ("boot-failure",
// "container-crash", ...), for declarative configuration surfaces like
// scenario YAML. The second result reports whether the name is known.
func KindByName(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Should reports whether a fault of kind k fires at this decision point.
// It is safe on a nil injector (never fires) and for concurrent use.
func (inj *Injector) Should(k Kind) bool {
	if inj == nil || k < 0 || k >= numKinds {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.rates[k] <= 0 {
		return false
	}
	inj.draws[k]++
	if inj.streams[k].Float64() < inj.rates[k] {
		inj.injected[k]++
		return true
	}
	return false
}

// ColdStartFactor reports the boot-latency multiplier for SlowColdStart
// victims (1 on a nil injector).
func (inj *Injector) ColdStartFactor() float64 {
	if inj == nil {
		return 1
	}
	return inj.coldStartFactor
}

// HangDuration reports how long an injected hang blocks (0 on a nil
// injector).
func (inj *Injector) HangDuration() time.Duration {
	if inj == nil {
		return 0
	}
	return inj.hang
}

// Counts snapshots the number of injected faults per kind, omitting kinds
// that never fired. It is safe on a nil injector (empty map).
func (inj *Injector) Counts() map[Kind]uint64 {
	out := map[Kind]uint64{}
	if inj == nil {
		return out
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for k, n := range inj.injected {
		if n > 0 {
			out[Kind(k)] = n
		}
	}
	return out
}

// Total reports the total number of injected faults across kinds.
func (inj *Injector) Total() uint64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n uint64
	for _, c := range inj.injected {
		n += c
	}
	return n
}

// Summary renders the injected-fault counts as "kind=n" pairs in kind
// order ("none" when nothing fired) — for logs and experiment tables.
func (inj *Injector) Summary() string {
	counts := inj.Counts()
	if len(counts) == 0 {
		return "none"
	}
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	s := ""
	for i, k := range kinds {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%d", k, counts[k])
	}
	return s
}
