package faasbatch_test

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	faasbatch "faasbatch"
)

// TestNewPlatformFunctionalOptions builds a platform entirely through
// options and drives the redesigned Resources API through the facade.
func TestNewPlatformFunctionalOptions(t *testing.T) {
	tracer, err := faasbatch.NewWallTracer(64, 1)
	if err != nil {
		t.Fatalf("NewWallTracer: %v", err)
	}
	logger, err := faasbatch.NewLogger(io.Discard, "info", "text")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	cfg := faasbatch.DefaultPlatformConfig()
	cfg.DispatchInterval = 20 * time.Millisecond
	cfg.ColdStart = 5 * time.Millisecond
	cfg.Multiplex = false // WithMultiplexer re-enables it.
	p, err := faasbatch.NewPlatform(cfg,
		faasbatch.WithTracer(tracer),
		faasbatch.WithLogger(logger),
		faasbatch.WithMultiplexer(faasbatch.MultiplexerConfig{
			MaxEntries: 64,
			TTL:        time.Minute,
		}),
	)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	var outcomes []faasbatch.Outcome
	err = p.Register("fn", func(ctx context.Context, inv *faasbatch.Invocation) (any, error) {
		for i := 0; i < 2; i++ {
			_, out, err := inv.Resources.GetContext(ctx, "db", "primary", func() (any, int64, error) {
				return "conn", 1 << 10, nil
			})
			if err != nil {
				return nil, err
			}
			outcomes = append(outcomes, out)
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if len(outcomes) != 2 || outcomes[0] != faasbatch.OutcomeMiss || outcomes[1] != faasbatch.OutcomeHit {
		t.Fatalf("outcomes = %v, want [miss hit]", outcomes)
	}
}

// TestNewPlatformConflictingOptions locks the option/config conflict
// contract: every double-set knob fails with ErrConflictingOptions and
// names the offender.
func TestNewPlatformConflictingOptions(t *testing.T) {
	tracer, err := faasbatch.NewWallTracer(64, 1)
	if err != nil {
		t.Fatalf("NewWallTracer: %v", err)
	}
	logger, err := faasbatch.NewLogger(io.Discard, "info", "text")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}

	cases := []struct {
		name string
		cfg  func() faasbatch.PlatformConfig
		opts []faasbatch.PlatformOption
		want string
	}{
		{
			name: "tracer in config and option",
			cfg: func() faasbatch.PlatformConfig {
				c := faasbatch.DefaultPlatformConfig()
				c.Tracer = tracer
				return c
			},
			opts: []faasbatch.PlatformOption{faasbatch.WithTracer(tracer)},
			want: "tracer",
		},
		{
			name: "logger in config and option",
			cfg: func() faasbatch.PlatformConfig {
				c := faasbatch.DefaultPlatformConfig()
				c.Logger = logger
				return c
			},
			opts: []faasbatch.PlatformOption{faasbatch.WithLogger(logger)},
			want: "logger",
		},
		{
			name: "multiplexer in config and option",
			cfg: func() faasbatch.PlatformConfig {
				c := faasbatch.DefaultPlatformConfig()
				c.Multiplexer = faasbatch.MultiplexerConfig{MaxEntries: 8}
				return c
			},
			opts: []faasbatch.PlatformOption{faasbatch.WithMultiplexer(faasbatch.MultiplexerConfig{MaxEntries: 16})},
			want: "multiplexer",
		},
		{
			name: "option passed twice",
			cfg:  faasbatch.DefaultPlatformConfig,
			opts: []faasbatch.PlatformOption{faasbatch.WithLogger(logger), faasbatch.WithLogger(logger)},
			want: "logger",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := faasbatch.NewPlatform(tc.cfg(), tc.opts...)
			if err == nil {
				p.Close()
				t.Fatal("NewPlatform succeeded, want conflict error")
			}
			if !errors.Is(err, faasbatch.ErrConflictingOptions) {
				t.Fatalf("err = %v, want ErrConflictingOptions", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %q, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestNewRouterFunctionalOptions drives the routing tier's redesigned
// construction surface through the facade: options compose with the
// config struct, and double-set knobs fail loudly — the same contract
// NewPlatform pins for the live platform.
func TestNewRouterFunctionalOptions(t *testing.T) {
	cfg := faasbatch.RouterConfig{
		Workers: []faasbatch.RouterWorkerSpec{{ID: "w1", URL: "http://w1.invalid"}},
	}
	rt, err := faasbatch.NewRouter(cfg,
		faasbatch.WithRouterPullConfig(faasbatch.PullConfig{QueueDepth: 8}),
	)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if got := rt.Policy().Name(); got != faasbatch.RouterPolicyPull {
		t.Fatalf("policy = %q, want %q", got, faasbatch.RouterPolicyPull)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, err = faasbatch.NewRouter(cfg,
		faasbatch.WithRouterPolicy(faasbatch.RouterPolicyHash),
		faasbatch.WithRouterPullConfig(faasbatch.PullConfig{}),
	)
	if err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("contradictory policy options: err = %v, want a policy conflict", err)
	}
}
