module faasbatch

go 1.22
