// Package faasbatch is a Go implementation of FaaSBatch (Wu et al.,
// ICDCS 2023): a serverless scheduling framework that batches concurrent
// function invocations per dispatch window, expands each batch in
// parallel inside a single container, and multiplexes redundant resources
// (storage clients) created during execution.
//
// The package exposes two complementary surfaces through type aliases to
// the implementation packages:
//
//   - The live platform (Platform, NewPlatform): a wall-clock runtime
//     that executes registered Go handlers with FaaSBatch scheduling and
//     serves them over HTTP (NewHTTPHandler). See examples/quickstart.
//
//   - The evaluation harness (RunExperiment, Figures): a deterministic
//     discrete-event reproduction of the paper's testbed — worker node,
//     container lifecycle, CPU contention, Azure-derived workloads —
//     that regenerates every table and figure of the paper in seconds.
//     See cmd/faasbench and examples/azurereplay.
//
// DESIGN.md maps the paper's systems to packages; EXPERIMENTS.md records
// paper-reported versus measured results.
package faasbatch

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"

	"faasbatch/internal/cluster"
	"faasbatch/internal/experiment"
	"faasbatch/internal/multiplex"
	"faasbatch/internal/obs"
	"faasbatch/internal/platform"
	"faasbatch/internal/pullsched"
	"faasbatch/internal/router"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

// Live platform API.
type (
	// Platform is the live FaaSBatch runtime.
	Platform = platform.Platform
	// PlatformConfig parameterises the live runtime.
	PlatformConfig = platform.Config
	// Mode selects batching (FaaSBatch) or per-invocation (Vanilla)
	// scheduling.
	Mode = platform.Mode
	// Handler is a registered serverless function.
	Handler = platform.Handler
	// Invocation is a handler's view of one request.
	Invocation = platform.Invocation
	// Resources is the handler-facing Resource Multiplexer facade.
	Resources = platform.Resources
	// Result is one completed invocation with its latency decomposition.
	Result = platform.Result
	// Outcome classifies how a Resources.GetContext call was served
	// (hit, miss, coalesced, stale, negative, error).
	Outcome = platform.Outcome
	// MultiplexerConfig tunes per-container Resource Multiplexer caches:
	// shard count, capacity bound, TTL, stale-while-revalidate window and
	// negative-caching backoff.
	MultiplexerConfig = multiplex.Config
)

// Outcomes of Resources.GetContext.
const (
	// OutcomeMiss means the caller built the instance.
	OutcomeMiss = platform.OutcomeMiss
	// OutcomeHit means a ready cached instance was served.
	OutcomeHit = platform.OutcomeHit
	// OutcomeCoalesced means the caller waited on an in-flight build.
	OutcomeCoalesced = platform.OutcomeCoalesced
	// OutcomeStale means a stale instance was served while a background
	// refresh ran.
	OutcomeStale = platform.OutcomeStale
	// OutcomeNegative means the negative cache denied the creation during
	// failure backoff.
	OutcomeNegative = platform.OutcomeNegative
	// OutcomeError means the call failed (build error, closed cache or
	// done context).
	OutcomeError = platform.OutcomeError
)

// Typed errors surfaced by Resources.GetContext (match with errors.Is).
var (
	// ErrBuildFailed marks a failed resource construction.
	ErrBuildFailed = platform.ErrBuildFailed
	// ErrCacheClosed marks a torn-down container cache.
	ErrCacheClosed = platform.ErrCacheClosed
)

// Live platform modes.
const (
	// ModeBatch is FaaSBatch scheduling.
	ModeBatch = platform.ModeBatch
	// ModeVanilla is one container per invocation.
	ModeVanilla = platform.ModeVanilla
)

// ErrConflictingOptions marks a NewPlatform call that sets the same knob
// both in the config struct and through a functional option (or passes
// the same option twice). Match with errors.Is.
var ErrConflictingOptions = errors.New("faasbatch: conflicting platform options")

// PlatformOption customises NewPlatform beyond the config struct.
// Options and config-struct construction compose, but each knob may be
// set through only one of the two — setting it through both fails with
// ErrConflictingOptions.
type PlatformOption func(*platformOptions)

// platformOptions accumulates functional-option state before it is
// merged into the config.
type platformOptions struct {
	tracer     *Tracer
	tracerSet  bool
	logger     *slog.Logger
	loggerSet  bool
	mcfg       MultiplexerConfig
	mcfgSet    bool
	duplicates []string
}

func (o *platformOptions) noteDup(name string, set bool) {
	if set {
		o.duplicates = append(o.duplicates, name)
	}
}

// WithTracer installs a per-invocation lifecycle tracer (equivalent to
// PlatformConfig.Tracer; setting both conflicts).
func WithTracer(t *Tracer) PlatformOption {
	return func(o *platformOptions) {
		o.noteDup("tracer", o.tracerSet)
		o.tracer, o.tracerSet = t, true
	}
}

// WithLogger installs the platform's structured logger (equivalent to
// PlatformConfig.Logger; setting both conflicts).
func WithLogger(l *slog.Logger) PlatformOption {
	return func(o *platformOptions) {
		o.noteDup("logger", o.loggerSet)
		o.logger, o.loggerSet = l, true
	}
}

// WithMultiplexer enables resource multiplexing with the given cache
// tuning (equivalent to PlatformConfig.Multiplex=true plus
// PlatformConfig.Multiplexer=mcfg; a non-zero config-struct Multiplexer
// conflicts).
func WithMultiplexer(mcfg MultiplexerConfig) PlatformOption {
	return func(o *platformOptions) {
		o.noteDup("multiplexer", o.mcfgSet)
		o.mcfg, o.mcfgSet = mcfg, true
	}
}

// multiplexerConfigured reports whether any multiplexer knob is set.
func multiplexerConfigured(c MultiplexerConfig) bool {
	return c.Shards != 0 || c.MaxEntries != 0 || c.TTL != 0 ||
		c.RefreshWindow != 0 || c.NegativeBackoff != 0 ||
		c.NegativeBackoffMax != 0 || c.Now != nil || c.OnEvict != nil
}

// NewPlatform starts a live platform. Close it when done. Functional
// options layer observability and multiplexer tuning over the config
// struct; a knob set both ways (or an option passed twice) fails with
// ErrConflictingOptions.
func NewPlatform(cfg PlatformConfig, opts ...PlatformOption) (*Platform, error) {
	var o platformOptions
	for _, opt := range opts {
		opt(&o)
	}
	conflicts := o.duplicates
	if o.tracerSet && cfg.Tracer != nil {
		conflicts = append(conflicts, "tracer")
	}
	if o.loggerSet && cfg.Logger != nil {
		conflicts = append(conflicts, "logger")
	}
	if o.mcfgSet && multiplexerConfigured(cfg.Multiplexer) {
		conflicts = append(conflicts, "multiplexer")
	}
	if len(conflicts) > 0 {
		return nil, fmt.Errorf("%w: %s set more than once", ErrConflictingOptions,
			strings.Join(conflicts, ", "))
	}
	if o.tracerSet {
		cfg.Tracer = o.tracer
	}
	if o.loggerSet {
		cfg.Logger = o.logger
	}
	if o.mcfgSet {
		cfg.Multiplex = true
		cfg.Multiplexer = o.mcfg
	}
	return platform.New(cfg)
}

// DefaultPlatformConfig returns live-runtime defaults (FaaSBatch mode,
// 200 ms window, multiplexing on).
func DefaultPlatformConfig() PlatformConfig { return platform.DefaultConfig() }

// NewHTTPHandler exposes a platform over HTTP (POST /invoke, GET /stats,
// GET /metrics, GET /debug/traces, GET /healthz). See
// docs/OBSERVABILITY.md.
func NewHTTPHandler(p *Platform) http.Handler { return platform.NewHTTPHandler(p) }

// Observability API (see docs/OBSERVABILITY.md).
type (
	// Tracer records per-invocation lifecycle spans and exports Chrome
	// trace-event JSON. Set PlatformConfig.Tracer (or
	// ExperimentConfig.Tracer) to enable tracing; a nil tracer is free.
	Tracer = obs.Tracer
	// TracerConfig parameterises a tracer (ring capacity, sampling,
	// clock).
	TracerConfig = obs.TracerConfig
	// TraceSpan is one completed invocation lifecycle span.
	TraceSpan = obs.Span
)

// NewWallTracer builds a wall-clock tracer for the live platform. Zero
// capacity/sample select the defaults (65536 spans, sample every trace).
func NewWallTracer(capacity, sample int) (*Tracer, error) {
	return obs.NewWallTracer(capacity, sample)
}

// NewTracer builds a tracer from cfg; virtual-time users supply the
// clock.
func NewTracer(cfg TracerConfig) (*Tracer, error) { return obs.NewTracer(cfg) }

// NewLogger builds the platform's structured logger. Level is one of
// debug/info/warn/error, format text or json. Set the result as
// PlatformConfig.Logger.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// Evaluation harness API.
type (
	// ExperimentConfig describes one evaluation run.
	ExperimentConfig = experiment.Config
	// ExperimentResult aggregates one run's measurements.
	ExperimentResult = experiment.Result
	// PolicyKind selects the scheduler under test.
	PolicyKind = experiment.PolicyKind
	// Figure is one reproducible table/figure of the paper.
	Figure = experiment.Figure
	// FigureOptions tunes a figure reproduction run.
	FigureOptions = experiment.Options
	// Trace is a time-ordered invocation workload.
	Trace = trace.Trace
	// BurstConfig parameterises trace synthesis.
	BurstConfig = trace.BurstConfig
	// WorkloadKind distinguishes CPU-intensive and I/O functions.
	WorkloadKind = workload.Kind
)

// Evaluated policies.
const (
	// PolicyVanilla launches one container per invocation.
	PolicyVanilla = experiment.PolicyVanilla
	// PolicySFS adds the SFS user-space CPU scheduler.
	PolicySFS = experiment.PolicySFS
	// PolicyKraken batches by SLO slack.
	PolicyKraken = experiment.PolicyKraken
	// PolicyFaaSBatch is the paper's contribution.
	PolicyFaaSBatch = experiment.PolicyFaaSBatch
)

// Workload kinds.
const (
	// CPUIntensive is the fib(N) family.
	CPUIntensive = workload.CPUIntensive
	// IO is the storage-client family.
	IO = workload.IO
)

// RunExperiment executes one evaluation run in virtual time.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return experiment.Run(cfg) }

// Figures lists every reproducible table/figure of the paper.
func Figures() []Figure { return experiment.Figures() }

// FigureByID looks a reproduction up by id (e.g. "fig11").
func FigureByID(id string) (Figure, bool) { return experiment.FigureByID(id) }

// SynthesizeBurst generates the paper's bursty one-minute Azure replay.
func SynthesizeBurst(cfg BurstConfig) (Trace, error) { return trace.SynthesizeBurst(cfg) }

// DefaultBurstConfig returns the paper's replay parameters for a
// workload kind.
func DefaultBurstConfig(kind WorkloadKind) BurstConfig { return trace.DefaultBurstConfig(kind) }

// Cluster scale-out API (beyond the paper's single worker VM).
type (
	// ClusterConfig parameterises a multi-node FaaSBatch fleet.
	ClusterConfig = cluster.Config
	// ClusterReplayConfig describes a cluster replay run.
	ClusterReplayConfig = cluster.ReplayConfig
	// ClusterResult aggregates one cluster replay.
	ClusterResult = cluster.Result
	// Balancing selects the cluster dispatcher's routing strategy.
	Balancing = cluster.Balancing
)

// Cluster routing strategies.
const (
	// FnAffinity pins each function to one node, preserving batching
	// locality.
	FnAffinity = cluster.FnAffinity
	// LeastLoaded routes each invocation to the lightest node.
	LeastLoaded = cluster.LeastLoaded
	// RoundRobin cycles nodes per invocation.
	RoundRobin = cluster.RoundRobin
	// ConsistentHash routes by ring ownership (the sim analogue of the
	// live router's hash policy).
	ConsistentHash = cluster.ConsistentHash
	// PullBalancing queues invocations per function and lets nodes with
	// free capacity pull them in batches (the sim analogue of the live
	// router's pull policy).
	PullBalancing = cluster.Pull
)

// ReplayCluster runs a trace through a multi-node FaaSBatch fleet.
func ReplayCluster(cfg ClusterReplayConfig) (*ClusterResult, error) { return cluster.Replay(cfg) }

// Routing tier API (cmd/faasrouter's programmatic surface).
type (
	// Router fronts a fleet of worker gateways.
	Router = router.Router
	// RouterConfig parameterises the router: fleet, probing, retries,
	// admission, autoscale, and the scheduling policy.
	RouterConfig = router.Config
	// RouterOption customises NewRouter beyond the config struct; a
	// knob set both ways fails with router.ErrConflictingOptions.
	RouterOption = router.Option
	// RouterPolicy is the router's scheduling strategy interface,
	// implemented by the hash and pull policies.
	RouterPolicy = router.Policy
	// RouterWorkerSpec names one worker gateway behind the router.
	RouterWorkerSpec = router.WorkerSpec
	// PullConfig tunes the pull policy's decision core (shards, batch
	// size, per-worker capacity, queue depth, lease budget).
	PullConfig = pullsched.Config
)

// Router scheduling policies (RouterConfig.Policy / WithRouterPolicy).
const (
	// RouterPolicyHash is consistent-hash push scheduling (default).
	RouterPolicyHash = router.PolicyHash
	// RouterPolicyPull is late-binding worker-pull scheduling.
	RouterPolicyPull = router.PolicyPull
)

// NewRouter builds a routing tier over a worker fleet. Close it when
// done; Start launches its health prober.
func NewRouter(cfg RouterConfig, opts ...RouterOption) (*Router, error) {
	return router.New(cfg, opts...)
}

// NewRouterHandler exposes a router over HTTP (/invoke, /stats,
// /metrics, /cluster/*, /healthz — see docs/CLUSTER.md).
func NewRouterHandler(rt *Router) http.Handler { return router.NewHTTPHandler(rt) }

// WithRouterPolicy selects the router's scheduling policy by name
// (equivalent to RouterConfig.Policy; setting both conflicts).
func WithRouterPolicy(name string) RouterOption { return router.WithPolicy(name) }

// WithRouterPullConfig selects the pull policy with explicit queue
// tuning (equivalent to RouterConfig.Policy=RouterPolicyPull plus
// RouterConfig.Pull; setting both conflicts).
func WithRouterPullConfig(cfg PullConfig) RouterOption { return router.WithPullConfig(cfg) }

// Function-chain workloads (sequential workflows).
type (
	// ChainConfig describes a chained-function replay.
	ChainConfig = experiment.ChainConfig
	// ChainResult aggregates a chain replay.
	ChainResult = experiment.ChainResult
	// ChainRecord is one completed chain.
	ChainRecord = experiment.ChainRecord
)

// RunChain executes a chained-function workload: stage k+1 of each chain
// is submitted when stage k completes.
func RunChain(cfg ChainConfig) (*ChainResult, error) { return experiment.RunChain(cfg) }

// Azure Functions dataset support.
type (
	// AzureFunctionRow is one row of the public Azure Functions 2019
	// per-minute invocation schema.
	AzureFunctionRow = trace.AzureFunctionRow
	// AzureReplayOptions selects a replay window from Azure rows.
	AzureReplayOptions = trace.AzureReplayOptions
)

// ReadAzureInvocationsCSV parses the Azure Functions per-minute schema.
func ReadAzureInvocationsCSV(r io.Reader) ([]AzureFunctionRow, error) {
	return trace.ReadAzureInvocationsCSV(r)
}

// FromAzureRows converts a window of Azure per-minute counts into a
// replayable trace.
func FromAzureRows(rows []AzureFunctionRow, opts AzureReplayOptions) (Trace, error) {
	return trace.FromAzureRows(rows, opts)
}

// DefaultAzureReplayOptions mirrors the paper's replay slice (one minute
// starting at 22:10).
func DefaultAzureReplayOptions() AzureReplayOptions { return trace.DefaultAzureReplayOptions() }
