// Interval sweep: the Fig. 13/14 trade-off as a library call — how the
// dispatch interval changes FaaSBatch's container count, memory, CPU and
// latency on the I/O workload, and how the adaptive dispatch controller
// (window cap = each swept interval) compares against the fixed window on
// both bursty and sparse traffic.
//
//	go run ./examples/intervalsweep
package main

import (
	"fmt"
	"os"
	"time"

	"faasbatch/internal/experiment"
	"faasbatch/internal/metrics"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intervalsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	tr, err := trace.SynthesizeBurst(trace.DefaultBurstConfig(workload.IO))
	if err != nil {
		return err
	}
	tr = tr.Head(400)
	fmt.Printf("sweeping the dispatch interval for FaaSBatch on %d I/O invocations ...\n\n", tr.Len())

	tbl := metrics.NewTable(
		"Larger windows fold more invocations per container (Fig. 14 trend)",
		"interval", "containers", "inv/container", "avg mem (MB)", "cpu util", "sched p90", "total p90")
	for _, interval := range experiment.SweepIntervals {
		res, err := experiment.Run(experiment.Config{
			Policy:   experiment.PolicyFaaSBatch,
			Trace:    tr,
			Seed:     13,
			Interval: interval,
		})
		if err != nil {
			return err
		}
		sched := res.CDF(metrics.Scheduling)
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(interval, res.TotalContainers,
			fmt.Sprintf("%.1f", float64(tr.Len())/float64(res.TotalContainers)),
			fmt.Sprintf("%.0f", res.AvgMemBytes/(1<<20)),
			fmt.Sprintf("%.1f%%", res.CPUUtil*100),
			sched.P(0.9).Round(time.Millisecond),
			tot.P(0.9).Round(time.Millisecond))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nThe window trades a bounded scheduling wait for fewer containers,")
	fmt.Println("less memory and lower CPU — the paper's §V-B5 observation.")

	if err := overlay(tr); err != nil {
		return err
	}
	return nil
}

// overlay compares the fixed window against the adaptive controller
// (window cap = each swept interval) on the bursty trace, then on sparse
// traffic where the idle fast-path is the whole story.
func overlay(bursty trace.Trace) error {
	run := func(tr trace.Trace, adaptive bool, interval time.Duration) (*experiment.Result, error) {
		return experiment.Run(experiment.Config{
			Policy:           experiment.PolicyFaaSBatch,
			Trace:            tr,
			Seed:             13,
			Interval:         interval,
			AdaptiveDispatch: adaptive,
		})
	}

	fmt.Println()
	tbl := metrics.NewTable(
		"Fixed vs adaptive windows on the bursty trace (cap = interval)",
		"interval", "fixed grp", "adaptive grp", "fixed sched p90", "adaptive sched p90", "fast-paths")
	for _, interval := range experiment.SweepIntervals {
		fixed, err := run(bursty, false, interval)
		if err != nil {
			return err
		}
		adaptive, err := run(bursty, true, interval)
		if err != nil {
			return err
		}
		tbl.AddRow(interval,
			fmt.Sprintf("%.1f", fixed.Batch.AvgGroupSize()),
			fmt.Sprintf("%.1f", adaptive.Batch.AvgGroupSize()),
			fixed.CDF(metrics.Scheduling).P(0.9).Round(time.Millisecond),
			adaptive.CDF(metrics.Scheduling).P(0.9).Round(time.Millisecond),
			adaptive.Batch.FastPathDispatches)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	scfg := trace.DefaultBurstConfig(workload.IO)
	scfg.N = 120
	sparse, err := trace.SynthesizeSteady(scfg)
	if err != nil {
		return err
	}
	fmt.Println()
	stbl := metrics.NewTable(
		"Sparse traffic: adaptive fast-paths lone arrivals past the window",
		"mode", "sched p50", "sched p99", "avg group", "fast-paths")
	for _, adaptive := range []bool{false, true} {
		res, err := run(sparse, adaptive, 200*time.Millisecond)
		if err != nil {
			return err
		}
		mode := "fixed"
		if adaptive {
			mode = "adaptive"
		}
		sched := res.CDF(metrics.Scheduling)
		stbl.AddRow(mode,
			sched.P(0.5).Round(time.Millisecond),
			sched.P(0.99).Round(time.Millisecond),
			fmt.Sprintf("%.2f", res.Batch.AvgGroupSize()),
			res.Batch.FastPathDispatches)
	}
	if err := stbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nAdaptive dispatch keeps the burst's grouping while sparing sparse")
	fmt.Println("arrivals the fixed window's pointless wait.")
	return nil
}
