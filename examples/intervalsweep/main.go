// Interval sweep: the Fig. 13/14 trade-off as a library call — how the
// dispatch interval changes FaaSBatch's container count, memory, CPU and
// latency on the I/O workload.
//
//	go run ./examples/intervalsweep
package main

import (
	"fmt"
	"os"
	"time"

	"faasbatch/internal/experiment"
	"faasbatch/internal/metrics"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intervalsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	tr, err := trace.SynthesizeBurst(trace.DefaultBurstConfig(workload.IO))
	if err != nil {
		return err
	}
	tr = tr.Head(400)
	fmt.Printf("sweeping the dispatch interval for FaaSBatch on %d I/O invocations ...\n\n", tr.Len())

	tbl := metrics.NewTable(
		"Larger windows fold more invocations per container (Fig. 14 trend)",
		"interval", "containers", "inv/container", "avg mem (MB)", "cpu util", "sched p90", "total p90")
	for _, interval := range experiment.SweepIntervals {
		res, err := experiment.Run(experiment.Config{
			Policy:   experiment.PolicyFaaSBatch,
			Trace:    tr,
			Seed:     13,
			Interval: interval,
		})
		if err != nil {
			return err
		}
		sched := res.CDF(metrics.Scheduling)
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(interval, res.TotalContainers,
			fmt.Sprintf("%.1f", float64(tr.Len())/float64(res.TotalContainers)),
			fmt.Sprintf("%.0f", res.AvgMemBytes/(1<<20)),
			fmt.Sprintf("%.1f%%", res.CPUUtil*100),
			sched.P(0.9).Round(time.Millisecond),
			tot.P(0.9).Round(time.Millisecond))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nThe window trades a bounded scheduling wait for fewer containers,")
	fmt.Println("less memory and lower CPU — the paper's §V-B5 observation.")
	return nil
}
