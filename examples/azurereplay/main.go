// Azure replay: run the paper's one-minute Azure burst through all four
// schedulers in the discrete-event simulator and compare them — the
// Fig. 11/12 experiment as a library call.
//
//	go run ./examples/azurereplay            # CPU-intensive workload
//	go run ./examples/azurereplay -kind io   # I/O workload (first 400)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"faasbatch/internal/experiment"
	"faasbatch/internal/metrics"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "azurereplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("azurereplay", flag.ContinueOnError)
	kindFlag := fs.String("kind", "cpu", "workload kind: cpu or io")
	seed := fs.Int64("seed", 13, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	kind := workload.CPUIntensive
	if *kindFlag == "io" {
		kind = workload.IO
	}
	tr, err := trace.SynthesizeBurst(func() trace.BurstConfig {
		cfg := trace.DefaultBurstConfig(kind)
		cfg.Seed = *seed
		return cfg
	}())
	if err != nil {
		return err
	}
	if kind == workload.IO {
		tr = tr.Head(400) // the paper evaluates I/O on the first 400
	}
	fmt.Printf("replaying %d %s invocations over %v through four schedulers ...\n\n",
		tr.Len(), *kindFlag, tr.Span.Round(time.Second))

	tbl := metrics.NewTable("", "policy", "containers", "sched p50", "sched p99",
		"exec+queue p50", "exec+queue p99", "total mean", "avg mem (MB)", "cpu util")
	var slo map[string]time.Duration
	for _, p := range experiment.AllPolicies {
		res, err := experiment.Run(experiment.Config{Policy: p, Trace: tr, Seed: *seed, SLO: slo})
		if err != nil {
			return fmt.Errorf("run %v: %w", p, err)
		}
		sched := res.CDF(metrics.Scheduling)
		eq := res.CDF(metrics.ExecPlusQueue)
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(res.Policy, res.TotalContainers,
			sched.P(0.5).Round(time.Millisecond), sched.P(0.99).Round(time.Millisecond),
			eq.P(0.5).Round(time.Millisecond), eq.P(0.99).Round(time.Millisecond),
			tot.Mean().Round(time.Millisecond),
			fmt.Sprintf("%.0f", res.AvgMemBytes/(1<<20)),
			fmt.Sprintf("%.1f%%", res.CPUUtil*100))
	}
	return tbl.Render(os.Stdout)
}
