package main

import "testing"

func TestRunCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-kind", "cpu"}); err != nil {
		t.Fatalf("run cpu: %v", err)
	}
}

func TestRunIO(t *testing.T) {
	if err := run([]string{"-kind", "io"}); err != nil {
		t.Fatalf("run io: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
