// Quickstart: embed the live FaaSBatch platform, register a function,
// fire a burst of concurrent invocations, and watch them share one
// container.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"faasbatch/internal/platform"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Start the platform in FaaSBatch mode: a 200 ms dispatch window,
	//    multiplexed containers, simulated 100 ms cold starts.
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		return err
	}
	defer func() { _ = p.Close() }()

	// 2. Register a function — the paper's CPU benchmark.
	err = p.Register("fib", func(_ context.Context, inv *platform.Invocation) (any, error) {
		var req struct {
			N int `json:"n"`
		}
		if err := json.Unmarshal(inv.Payload, &req); err != nil {
			return nil, err
		}
		return workload.Fib(req.N), nil
	})
	if err != nil {
		return err
	}

	// 3. Fire 12 concurrent invocations. The Invoke Mapper folds them
	//    into one window group; the Inline-Parallel Producer expands the
	//    group inside a single container.
	fmt.Println("firing 12 concurrent fib(28) invocations ...")
	var wg sync.WaitGroup
	var mu sync.Mutex
	containers := map[string]bool{}
	start := time.Now()
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{"n":28}`))
			if err != nil {
				fmt.Fprintln(os.Stderr, "invoke:", err)
				return
			}
			mu.Lock()
			containers[res.ContainerID] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Printf("all done in %v\n", time.Since(start).Round(time.Millisecond))

	// 4. One more call shows the latency decomposition of §IV.
	res, err := p.Invoke(context.Background(), "fib", json.RawMessage(`{"n":30}`))
	if err != nil {
		return err
	}
	fmt.Printf("fib(30) = %v\n", res.Value)
	fmt.Printf("latency: sched %v + cold %v + exec %v = %v (container %s)\n",
		res.Sched.Round(time.Millisecond), res.ColdStart.Round(time.Millisecond),
		res.Exec.Round(time.Millisecond), res.Total().Round(time.Millisecond), res.ContainerID)

	st := p.Stats()
	fmt.Printf("\nplatform stats: %d invocations, %d batches, %d containers created (%d distinct used by the burst)\n",
		st.Invocations, st.Groups, st.ContainersCreated, len(containers))
	return nil
}
