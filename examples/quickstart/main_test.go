package main

import "testing"

func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: wall-clock example")
	}
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}
