package main

import "testing"

func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}
