// Function chains: sequential workflows (stage k+1 starts when stage k
// completes) across the four schedulers — the microservice setting the
// original Kraken targets. FaaSBatch's advantage compounds per stage.
//
//	go run ./examples/chains
package main

import (
	"fmt"
	"os"
	"time"

	faasbatch "faasbatch"
	"faasbatch/internal/experiment"
	"faasbatch/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chains:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := faasbatch.DefaultBurstConfig(faasbatch.CPUIntensive)
	cfg.N = 200
	tr, err := faasbatch.SynthesizeBurst(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("running %d three-stage chains through four schedulers ...\n\n", tr.Len())

	tbl := metrics.NewTable("3-stage chains (each stage re-enters the scheduler)",
		"policy", "containers", "chain p50", "chain p90", "chain p99", "makespan")
	for _, p := range []experiment.PolicyKind{
		experiment.PolicyVanilla, experiment.PolicySFS,
		experiment.PolicyKraken, experiment.PolicyFaaSBatch,
	} {
		res, err := faasbatch.RunChain(faasbatch.ChainConfig{
			Policy: p,
			Trace:  tr,
			Stages: 3,
			Seed:   13,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", p, err)
		}
		cdf := res.TotalCDF()
		tbl.AddRow(res.Policy, res.TotalContainers,
			cdf.P(0.5).Round(time.Millisecond), cdf.P(0.9).Round(time.Millisecond),
			cdf.P(0.99).Round(time.Millisecond), res.Makespan.Round(time.Millisecond))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nEvery stage pays its scheduler again: Vanilla re-queues container")
	fmt.Println("creations, Kraken re-queues batches, FaaSBatch only re-pays the window.")
	return nil
}
