// Cluster scale-out: FaaSBatch beyond the paper's single worker VM. A
// fleet of nodes serves a heavy multi-function burst under three routing
// strategies; function affinity preserves batching locality (fewest
// containers), per-invocation balancing fragments windows across nodes.
//
//	go run ./examples/clusterscale
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"faasbatch/internal/cluster"
	"faasbatch/internal/metrics"
	"faasbatch/internal/trace"
	"faasbatch/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterscale:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4x paper-scale burst: 3200 CPU-intensive invocations in one
	// minute across 16 hot functions.
	cfg := trace.DefaultBurstConfig(workload.CPUIntensive)
	cfg.N = 3200
	tr, err := trace.SynthesizeBurst(cfg)
	if err != nil {
		return err
	}
	// Give each hot function its own identity so routing matters; the
	// assignment is random so round-robin cannot accidentally act as
	// per-function affinity.
	rng := rand.New(rand.NewSource(7))
	for i := range tr.Invocations {
		tr.Invocations[i].Fn = fmt.Sprintf("fn%02d", rng.Intn(16))
	}

	fmt.Printf("replaying %d invocations (16 functions, 1 minute) on growing fleets ...\n\n", tr.Len())
	tbl := metrics.NewTable(
		"Scale-out under fn-affinity routing",
		"nodes", "containers", "imbalance", "total p50", "total p99", "makespan")
	for _, nodes := range []int{1, 2, 4, 8} {
		res, err := cluster.Replay(cluster.ReplayConfig{
			Cluster: cluster.Config{Nodes: nodes},
			Trace:   tr,
			Seed:    13,
		})
		if err != nil {
			return err
		}
		tot := res.CDF(metrics.EndToEnd)
		tbl.AddRow(nodes, res.TotalContainers,
			fmt.Sprintf("%.2f", res.Imbalance()),
			tot.P(0.5).Round(time.Millisecond), tot.P(0.99).Round(time.Millisecond),
			res.Makespan.Round(time.Millisecond))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	tbl2 := metrics.NewTable(
		"Routing strategies on 4 nodes (batching locality vs spreading)",
		"balancing", "containers", "imbalance", "total p50", "total p99")
	for _, bal := range []cluster.Balancing{cluster.FnAffinity, cluster.LeastLoaded, cluster.RoundRobin} {
		res, err := cluster.Replay(cluster.ReplayConfig{
			Cluster: cluster.Config{Nodes: 4, Balancing: bal},
			Trace:   tr,
			Seed:    13,
		})
		if err != nil {
			return err
		}
		tot := res.CDF(metrics.EndToEnd)
		tbl2.AddRow(bal.String(), res.TotalContainers,
			fmt.Sprintf("%.2f", res.Imbalance()),
			tot.P(0.5).Round(time.Millisecond), tot.P(0.99).Round(time.Millisecond))
	}
	if err := tbl2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nAffinity keeps each function's windows on one node — FaaSBatch's")
	fmt.Println("one-container-per-group invariant survives the scale-out.")
	return nil
}
