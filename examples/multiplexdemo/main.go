// Multiplex demo: the §II-B motivation on the live platform. An I/O
// function builds an expensive storage client; with the Resource
// Multiplexer one container builds it once and every concurrent
// invocation shares it — without, every invocation pays.
//
//	go run ./examples/multiplexdemo
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"faasbatch/internal/platform"
)

// clientBuildCost mirrors Fig. 4's un-contended 66 ms construction.
const clientBuildCost = 66 * time.Millisecond

// clientMem mirrors Fig. 14d's ~15 MB per client instance.
const clientMem = 15 << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiplexdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, multiplex := range []bool{false, true} {
		builds, wave1, wave2, err := measure(multiplex)
		if err != nil {
			return err
		}
		label := "multiplexer OFF"
		if multiplex {
			label = "multiplexer ON "
		}
		fmt.Printf("%s: 2x16 concurrent invocations -> %2d client builds, mean exec wave1 %v, wave2 %v\n",
			label, builds, wave1.Round(time.Millisecond), wave2.Round(time.Millisecond))
	}
	fmt.Println("\nThe multiplexer builds each client once per container; later waves hit")
	fmt.Println("the cache and skip construction entirely — the paper's §III-D win.")
	return nil
}

// measure runs two waves of 16 concurrent I/O invocations and reports the
// client build count plus each wave's mean execution latency.
func measure(multiplex bool) (int64, time.Duration, time.Duration, error) {
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 50 * time.Millisecond
	cfg.ColdStart = 20 * time.Millisecond
	cfg.Multiplex = multiplex
	p, err := platform.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = p.Close() }()

	var builds atomic.Int64
	err = p.Register("s3func", func(_ context.Context, inv *platform.Invocation) (any, error) {
		_, _, err := inv.Resources.Get("s3.client", "ACCESS_KEY", func() (any, int64, error) {
			builds.Add(1)
			time.Sleep(clientBuildCost)
			return "S3_client", clientMem, nil
		})
		if err != nil {
			return nil, err
		}
		time.Sleep(15 * time.Millisecond) // the blob access
		return "ok", nil
	})
	if err != nil {
		return 0, 0, 0, err
	}

	wave := func() time.Duration {
		const n = 16
		var wg sync.WaitGroup
		var mu sync.Mutex
		var total time.Duration
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := p.Invoke(context.Background(), "s3func", nil)
				if err != nil {
					fmt.Fprintln(os.Stderr, "invoke:", err)
					return
				}
				mu.Lock()
				total += res.Exec
				mu.Unlock()
			}()
		}
		wg.Wait()
		return total / n
	}
	wave1 := wave()
	wave2 := wave()
	return builds.Load(), wave1, wave2, nil
}
