// Multiplex demo: the §II-B motivation on the live platform. An I/O
// function builds an expensive storage client; with the Resource
// Multiplexer one container builds it once and every concurrent
// invocation shares it — without, every invocation pays.
//
// The second half showcases the v2 cache: GetContext outcomes,
// handler-driven invalidation, negative caching under a flapping
// dependency, and the bounded LRU closing evicted clients.
//
//	go run ./examples/multiplexdemo
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"faasbatch/internal/multiplex"
	"faasbatch/internal/platform"
)

// clientBuildCost mirrors Fig. 4's un-contended 66 ms construction.
const clientBuildCost = 66 * time.Millisecond

// clientMem mirrors Fig. 14d's ~15 MB per client instance.
const clientMem = 15 << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiplexdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, multiplex := range []bool{false, true} {
		builds, wave1, wave2, err := measure(multiplex)
		if err != nil {
			return err
		}
		label := "multiplexer OFF"
		if multiplex {
			label = "multiplexer ON "
		}
		fmt.Printf("%s: 2x16 concurrent invocations -> %2d client builds, mean exec wave1 %v, wave2 %v\n",
			label, builds, wave1.Round(time.Millisecond), wave2.Round(time.Millisecond))
	}
	fmt.Println("\nThe multiplexer builds each client once per container; later waves hit")
	fmt.Println("the cache and skip construction entirely — the paper's §III-D win.")

	return demoV2()
}

// closingClient stands in for a client holding a real connection.
type closingClient struct{ key string }

func (c *closingClient) Close() error {
	fmt.Printf("  closed evicted client %q\n", c.key)
	return nil
}

// demoV2 exercises the failure-aware half of the v2 cache: outcome
// taxonomy, invalidation, negative backoff and bounded eviction.
func demoV2() error {
	fmt.Println("\n--- Resource Multiplexer v2 ---")
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 20 * time.Millisecond
	cfg.ColdStart = 5 * time.Millisecond
	cfg.Multiplexer = multiplex.Config{
		Shards:          1,                      // one shard -> exact global LRU for the demo
		MaxEntries:      2,                      // bounded: third client evicts the LRU one
		NegativeBackoff: 250 * time.Millisecond, // failed builds deny retries briefly
	}
	p, err := platform.New(cfg)
	if err != nil {
		return err
	}
	defer func() { _ = p.Close() }()

	flaky := atomic.Bool{}
	flaky.Store(true)
	err = p.Register("v2", func(ctx context.Context, inv *platform.Invocation) (any, error) {
		get := func(key string) platform.Outcome {
			_, out, err := inv.Resources.GetContext(ctx, "s3.client", key, func() (any, int64, error) {
				return &closingClient{key: key}, clientMem, nil
			})
			if err != nil {
				fmt.Printf("  get %q failed: %v\n", key, err)
			}
			return out
		}

		fmt.Printf("  get \"a\" -> %s, again -> %s\n", get("a"), get("a"))
		inv.Resources.Invalidate("s3.client", "a")
		fmt.Printf("  after Invalidate: get \"a\" -> %s\n", get("a"))

		// A flapping dependency: the first build fails, the immediate
		// retry is absorbed by the negative cache without building.
		_, out, err := inv.Resources.GetContext(ctx, "s3.client", "flaky", func() (any, int64, error) {
			if flaky.Load() {
				return nil, 0, errors.New("connection refused")
			}
			return &closingClient{key: "flaky"}, clientMem, nil
		})
		fmt.Printf("  flaky build -> %s (%v)\n", out, errors.Is(err, platform.ErrBuildFailed))
		_, out, _ = inv.Resources.GetContext(ctx, "s3.client", "flaky", func() (any, int64, error) {
			return nil, 0, errors.New("unreachable: denied before building")
		})
		fmt.Printf("  immediate retry -> %s (constructor not run)\n", out)

		// MaxEntries=2: building "b" and "c" on top of "a" evicts the
		// least-recently-used client, which is closed on the way out.
		get("b")
		get("c")
		return nil, nil
	})
	if err != nil {
		return err
	}
	if _, err := p.Invoke(context.Background(), "v2", nil); err != nil {
		return err
	}
	st := p.Stats().Multiplexer
	fmt.Printf("cache stats: hits=%d misses=%d negative=%d evictions=%d invalidations=%d\n",
		st.Hits, st.Misses, st.NegativeHits, st.Evictions, st.Invalidations)
	return nil
}

// measure runs two waves of 16 concurrent I/O invocations and reports the
// client build count plus each wave's mean execution latency.
func measure(multiplex bool) (int64, time.Duration, time.Duration, error) {
	cfg := platform.DefaultConfig()
	cfg.DispatchInterval = 50 * time.Millisecond
	cfg.ColdStart = 20 * time.Millisecond
	cfg.Multiplex = multiplex
	p, err := platform.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = p.Close() }()

	var builds atomic.Int64
	err = p.Register("s3func", func(_ context.Context, inv *platform.Invocation) (any, error) {
		_, _, err := inv.Resources.Get("s3.client", "ACCESS_KEY", func() (any, int64, error) {
			builds.Add(1)
			time.Sleep(clientBuildCost)
			return "S3_client", clientMem, nil
		})
		if err != nil {
			return nil, err
		}
		time.Sleep(15 * time.Millisecond) // the blob access
		return "ok", nil
	})
	if err != nil {
		return 0, 0, 0, err
	}

	wave := func() time.Duration {
		const n = 16
		var wg sync.WaitGroup
		var mu sync.Mutex
		var total time.Duration
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := p.Invoke(context.Background(), "s3func", nil)
				if err != nil {
					fmt.Fprintln(os.Stderr, "invoke:", err)
					return
				}
				mu.Lock()
				total += res.Exec
				mu.Unlock()
			}()
		}
		wg.Wait()
		return total / n
	}
	wave1 := wave()
	wave2 := wave()
	return builds.Load(), wave1, wave2, nil
}
