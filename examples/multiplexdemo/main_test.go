package main

import "testing"

func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: wall-clock example")
	}
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestMeasureMultiplexReducesBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: wall-clock example")
	}
	buildsOff, _, _, err := measure(false)
	if err != nil {
		t.Fatalf("measure(false): %v", err)
	}
	buildsOn, _, wave2, err := measure(true)
	if err != nil {
		t.Fatalf("measure(true): %v", err)
	}
	if buildsOn >= buildsOff {
		t.Fatalf("multiplexer builds %d not fewer than %d", buildsOn, buildsOff)
	}
	if wave2 > 60_000_000 { // 60ms: second wave must skip the 66ms build
		t.Fatalf("wave2 = %dns, want cache-hit latency", wave2)
	}
}
